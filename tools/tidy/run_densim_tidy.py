#!/usr/bin/env python3
"""densim AST-grounded determinism & lifetime analyzer — portable driver.

Runs the same five project rules as the clang-tidy plugin module in
tools/tidy/ (DensimTidyModule, loaded with `clang-tidy -load`), so CI
keeps full coverage on machines where the plugin cannot be built:

  densim-nondeterministic-iteration
      Range-for / iterator walks over std::unordered_{map,set} in
      engine code whose body writes state outside the loop. Iteration
      order is unspecified and varies across standard libraries and
      even across runs (pointer-salted hashing), so any such write can
      break the bit-identical-across-configurations contract the
      golden tests pin. Fix: iterate a sorted snapshot, or use
      std::map/std::set.

  densim-unseeded-entropy
      Wall-clock and ambient entropy in engine code: rand/srand,
      std::random_device, time/clock/gettimeofday, std::chrono
      *_clock::now, std:: random engines, and pointer keys in ordered
      containers (address order is ASLR entropy). All randomness must
      come from an explicitly seeded densim::Rng stream; all timing
      from simulated time. The obs phase profiler's steady_clock is
      the one blessed wall-clock reader (it never feeds back into the
      model) and sits on the allowlist below.

  densim-arena-lifo
      Arena::mark()/release() pairs must be lexically scoped and
      unwind LIFO within one function (DESIGN.md Sec. 12): every mark
      is released in the scope that made it, in reverse order of
      marking, and no return may cross an outstanding mark.

  densim-hot-layout
      std::vector<bool> (bit-packed proxy references, no .data(), no
      vectorizable loads) and non-contiguous node containers
      (std::list / std::forward_list) in SoA hot-path code. Use
      std::vector<std::uint8_t> and flat arrays.

  densim-raw-double-boundary
      The typed-quantity boundary rule (DESIGN.md Sec. 9) grounded on
      real function *parameters*: a `double` parameter with a
      unit-carrying name in a header must be a typed quantity from
      core/units.hh, unless the reviewed allowlist
      (tools/lint/raw_double_allowlist.txt) carries it. Unlike the
      retired regex scan, locals and members never false-positive, so
      the allowlist only holds entries the AST actually needs.

  densim-hot-effects
      The interprocedural pass (DESIGN.md Sec. 14, engine in
      tools/tidy/hot_effects.py): per-function summaries over the
      effect lattice {allocates, throws, io, entropy, unordered} are
      computed per TU (cached by content hash) and merged in a link
      step; any unsanctioned effect reachable from a DENSIM_HOT root
      (src/core/effects.hh) is a finding, with the witness call
      path. Virtual calls resolve to the whole override family;
      function-pointer calls are findings in themselves unless the
      caller carries DENSIM_ALLOCATES(reason).

  densim-unjustified-suppression
      DESIGN.md Sec. 13's suppression policy, enforced: a
      `// NOLINT(densim-*)` (or bare NOLINT, which suppresses every
      densim check) without a justification — prose in the same
      comment or a comment on the preceding line — is itself a
      finding. This check ignores NOLINT markers entirely: a policy
      violation cannot suppress the policy.

Frontends (``--frontend auto|clang|builtin``):

  clang     parse each file with `clang -Xclang -ast-dump=json` and
            run the rules over the real AST (used when a clang
            binary is on PATH).
  builtin   a dependency-free scope-aware token frontend: comments
            and strings stripped, brace/paren/template nesting and
            declarations tracked. Less precise than the AST (it can
            miss aliased containers) but runs everywhere python3
            runs, so the gate never silently loses coverage.

Suppression: `// NOLINT(densim-<check>)` on the flagged line or
`// NOLINTNEXTLINE(densim-<check>)` on the line above. Bare NOLINT
suppresses every densim check on that line. Every suppression is a
reviewed decision, same policy as the raw-double allowlist.

Usage:
    tools/tidy/run_densim_tidy.py [--repo DIR] [--frontend F]
                                  [--checks a,b] [--sarif OUT.sarif]
                                  [--changed-only [--changed-base R]]
                                  [files...]
    tools/tidy/run_densim_tidy.py --self-test
    tools/tidy/run_densim_tidy.py --list-checks

`--sarif` additionally writes the findings as a SARIF 2.1.0 run (for
GitHub code scanning). `--changed-only` restricts the per-file checks
to files `git diff --name-only <base>` reports; the interprocedural
densim-hot-effects link still covers the whole tree (its per-TU
summaries come from the content-hash cache, so only changed files are
re-parsed — that is what keeps the CI tidy stage's wall-clock flat).

With no file arguments the whole tree is scanned, each check over its
scope (see CHECK_SCOPES). `--self-test` runs every fixture TU in
tests/tidy_fixtures/ and asserts each known-bad file is flagged by
exactly its check and each known-good file is clean — on every
frontend the machine can run. Exits non-zero on findings or self-test
failure.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                    "lint"))
import densim_lint  # noqa: E402  (UNIT_NAME_RE / DIMENSIONLESS / allowlist)

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import hot_effects  # noqa: E402  (densim-hot-effects engine)

ALL_CHECKS = (
    "densim-nondeterministic-iteration",
    "densim-unseeded-entropy",
    "densim-arena-lifo",
    "densim-hot-layout",
    "densim-raw-double-boundary",
    "densim-hot-effects",
    "densim-unjustified-suppression",
)

RULE_DESCRIPTIONS = {
    "densim-nondeterministic-iteration":
        "Unordered-container iteration writes sim-visible state",
    "densim-unseeded-entropy":
        "Wall-clock or ambient entropy in engine code",
    "densim-arena-lifo":
        "Arena mark/release must pair lexically and unwind LIFO",
    "densim-hot-layout":
        "Bit-packed or node-based container in SoA hot-path code",
    "densim-raw-double-boundary":
        "Raw double with a unit-carrying name crosses a header API",
    "densim-hot-effects":
        "Unsanctioned effect reachable from a DENSIM_HOT root",
    "densim-unjustified-suppression":
        "NOLINT(densim-*) without a justification comment",
}

# Directories each check scans in a whole-tree run. Explicit file
# arguments (and the self-test fixtures) bypass the scope filter.
ENGINE_DIRS = ("src/core", "src/sched", "src/thermal", "src/power",
               "src/fault")
HOT_DIRS = ("src/core", "src/thermal", "src/sched")
CHECK_SCOPES = {
    "densim-nondeterministic-iteration": ENGINE_DIRS,
    "densim-unseeded-entropy": ENGINE_DIRS,
    "densim-arena-lifo": ("src",),
    "densim-hot-layout": HOT_DIRS,
    "densim-raw-double-boundary": ("src",),
    # The interprocedural link needs every function the hot roots can
    # reach, so its scope is the whole src tree.
    "densim-hot-effects": ("src",),
    "densim-unjustified-suppression": ("src",),
}

# densim-hot-effects is a whole-program link, not a per-file scan; the
# per-file loops below exclude it and scan()/run_tree() run the link
# once over the full file list.
INTERPROCEDURAL_CHECKS = {"densim-hot-effects"}

# Blessed entropy readers (path prefixes, repo-relative): the seeded
# RNG streams themselves and the obs wall-clock phase timers, which
# only ever *observe* the simulation (DESIGN.md Sec. 10).
ENTROPY_ALLOW_PREFIXES = (
    "src/util/rng.",
    "src/obs/phase_profiler.",
)

ENTROPY_FUNCS = {"rand", "srand", "time", "clock", "gettimeofday",
                 "timespec_get"}
ENTROPY_TYPES = {"random_device", "mt19937", "mt19937_64",
                 "minstd_rand", "minstd_rand0", "default_random_engine",
                 "ranlux24", "ranlux48", "knuth_b"}
CLOCK_NAMES = {"steady_clock", "system_clock", "high_resolution_clock"}

MUTATING_CALLS = {"push_back", "emplace_back", "push_front",
                  "emplace_front", "insert", "emplace", "erase",
                  "clear", "pop_back", "pop_front", "resize", "assign",
                  "add", "inc", "store", "reset"}
ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>="}
TYPE_KEYWORDS = {"auto", "int", "long", "unsigned", "signed", "short",
                 "double", "float", "bool", "char", "size_t",
                 "uint8_t", "uint16_t", "uint32_t", "uint64_t",
                 "int8_t", "int16_t", "int32_t", "int64_t",
                 "ptrdiff_t", "uintptr_t"}


class Finding:
    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "{}:{}: [{}] {}".format(self.path, self.line, self.check,
                                       self.message)


# --------------------------------------------------------------------
# NOLINT suppression (shared by both frontends)

NOLINT_RE = re.compile(
    r"//\s*NOLINT(NEXTLINE)?(?:\(([^)]*)\))?")


def nolint_lines(text):
    """Map line number -> set of suppressed check names ('*' = all)."""
    out = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = NOLINT_RE.search(line)
        if not m:
            continue
        target = lineno + 1 if m.group(1) else lineno
        checks = out.setdefault(target, set())
        if m.group(2):
            checks.update(c.strip() for c in m.group(2).split(","))
        else:
            checks.add("*")
    return out


def suppressed(finding, nolint):
    checks = nolint.get(finding.line)
    return bool(checks) and ("*" in checks or finding.check in checks)


# --------------------------------------------------------------------
# densim-unjustified-suppression (frontend-independent; DESIGN §13's
# "every suppression is a reviewed decision", enforced)

def _has_prose(s):
    """At least two real words beyond the NOLINT machinery itself."""
    words = [w for w in re.findall(r"[A-Za-z]{2,}", s)
             if w not in ("NOLINT", "NOLINTNEXTLINE", "densim")]
    return len(words) >= 2


def check_unjustified_suppression(text, rel):
    findings = []
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        m = NOLINT_RE.search(line)
        if not m:
            continue
        targets = [c.strip() for c in (m.group(2) or "").split(",")
                   if c.strip()]
        if targets and not any(t.startswith("densim-") or t == "*"
                               for t in targets):
            continue  # Suppresses only non-densim checks — not ours.
        cpos = line.find("//")
        comment = line[cpos:] if cpos >= 0 else line
        justified = _has_prose(comment.replace(m.group(0), " "))
        if not justified and lineno >= 2:
            prev = lines[lineno - 2].strip()
            if prev.startswith(("//", "*", "/*")) and \
                    "NOLINT" not in prev and _has_prose(prev):
                justified = True
        if not justified:
            findings.append(Finding(
                "densim-unjustified-suppression", rel, lineno,
                "NOLINT suppression of a densim check without a "
                "justification; add the why in the same comment or on "
                "the preceding line — every suppression is a reviewed "
                "decision (DESIGN.md Sec. 13)"))
    return findings


# --------------------------------------------------------------------
# densim-hot-effects bridge (engine in hot_effects.py)

def default_cache_dir(repo, use_cache):
    if not use_cache:
        return None
    return os.path.join(repo, ".densim-cache", "effects")


def hot_effects_findings(repo, files, frontend, use_cache=True,
                         override=None):
    """Run the interprocedural link over `files` [(full, rel)] and
    return NOLINT-filtered Finding objects."""
    clang = find_clang() if frontend in ("auto", "clang") else None
    raw = hot_effects.analyze(
        repo, files, frontend, clang,
        default_cache_dir(repo, use_cache), override=override)
    findings = []
    nolint_by_file = {}
    for rel, line, message in raw:
        f = Finding("densim-hot-effects", rel, line, message)
        nolint = nolint_by_file.get(rel)
        if nolint is None:
            try:
                with open(os.path.join(repo, rel),
                          encoding="utf-8") as fh:
                    nolint = nolint_lines(fh.read())
            except OSError:
                nolint = {}
            nolint_by_file[rel] = nolint
        if not suppressed(f, nolint):
            findings.append(f)
    return findings


# --------------------------------------------------------------------
# Builtin frontend: tokenizer

TOKEN_RE = re.compile(r"""
      [A-Za-z_][A-Za-z0-9_]*
    | 0[xX][0-9a-fA-F'.pP+-]+ | \.?\d[\d'.eEpPfFuUlL+-]*
    | <<= | >>= | ->\* | \.\.\. | :: | -> | \+\+ | -- | << | >>
    | <= | >= | == | != | && | \|\| | [+\-*/%&|^!=]=
    | [{}()\[\];:,<>.?~!+\-*/%&|^=]
""", re.X)


class Tok:
    __slots__ = ("text", "line")

    def __init__(self, text, line):
        self.text = text
        self.line = line

    def __repr__(self):
        return "Tok({!r}@{})".format(self.text, self.line)


def strip_preserving_lines(text):
    """Remove comments, string and char literals, keeping newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        two = text[i:i + 2]
        if two == "//":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c == '"':
            if text[i - 1:i].isalnum() and text[max(0, i - 2):i] == 'R"':
                # Raw string: R"delim( ... )delim"
                m = re.match(r'"([^(]*)\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    j = text.find(close, i)
                    j = n if j < 0 else j + len(close)
                    out.append("\n" * text.count("\n", i, j))
                    i = j
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def tokenize(text):
    clean = strip_preserving_lines(text)
    toks = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(clean):
        line += clean.count("\n", pos, m.start())
        pos = m.start()
        toks.append(Tok(m.group(0), line))
    return toks


def skip_template_args(toks, i):
    """toks[i] == '<': return index just past the matching '>'."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif t in (";", "{"):
            return i  # Not a template argument list after all.
        i += 1
    return i


def match_paren(toks, i):
    """toks[i] == '(': return index of the matching ')'."""
    depth = 0
    while i < len(toks):
        if toks[i].text == "(":
            depth += 1
        elif toks[i].text == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks) - 1


def match_brace(toks, i):
    """toks[i] == '{': return index of the matching '}'."""
    depth = 0
    while i < len(toks):
        if toks[i].text == "{":
            depth += 1
        elif toks[i].text == "}":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks) - 1


def is_ident(tok):
    return bool(tok) and re.match(r"[A-Za-z_]", tok.text)


# --------------------------------------------------------------------
# Builtin frontend: the five checks over the token stream


def builtin_unordered_names(toks):
    """Names (variables and aliases) declared with an unordered type."""
    names, aliases = set(), set()
    for i, t in enumerate(toks):
        if t.text == "using" and i + 2 < len(toks) and \
                toks[i + 2].text == "=":
            j = i + 3
            end = j
            while end < len(toks) and toks[end].text != ";":
                end += 1
            if any(x.text in ("unordered_map", "unordered_set")
                   or x.text in aliases
                   for x in toks[j:end]):
                aliases.add(toks[i + 1].text)
        if t.text in ("unordered_map", "unordered_set") or \
                t.text in aliases:
            j = i + 1
            if j < len(toks) and toks[j].text == "<":
                j = skip_template_args(toks, j)
            while j < len(toks) and toks[j].text in ("&", "*", "const"):
                j += 1
            if j < len(toks) and is_ident(toks[j]) and (
                    j + 1 >= len(toks)
                    or toks[j + 1].text in (";", "=", "{", ",", ")")):
                names.add(toks[j].text)
    return names, aliases


def body_local_names(body):
    """Names declared inside a loop body (declaration heuristics)."""
    locals_ = set()
    for i, t in enumerate(body):
        if not is_ident(t):
            continue
        k = i - 1
        while k >= 0 and body[k].text in ("&", "*", "const"):
            k -= 1
        if k >= 0 and (body[k].text in TYPE_KEYWORDS
                       or body[k].text == ">"):
            nxt = body[i + 1].text if i + 1 < len(body) else ";"
            if nxt in ("=", ";", "{", "(", ",", ")"):
                locals_.add(t.text)
    return locals_


def write_base(body, i):
    """Base identifier of the lvalue chain ending before body[i]."""
    k = i - 1
    while k >= 0:
        t = body[k].text
        if t == "]":
            depth = 0
            while k >= 0:
                if body[k].text == "]":
                    depth += 1
                elif body[k].text == "[":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            k -= 1
        elif t == ")":
            depth = 0
            while k >= 0:
                if body[k].text == ")":
                    depth += 1
                elif body[k].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            k -= 1
        elif t in TYPE_KEYWORDS or t == "const":
            break  # `const bool hot = ...` — chain starts after type.
        elif is_ident(body[k]) or t in (".", "->", "::", "*"):
            k -= 1
        else:
            break
    # First identifier after position k is the chain base.
    for j in range(k + 1, i):
        if is_ident(body[j]):
            return body[j].text
    return None


def body_writes_external(body, loop_vars):
    """Line of the first write to state declared outside the body."""
    locals_ = body_local_names(body) | set(loop_vars)
    for i, t in enumerate(body):
        base = None
        if t.text in ASSIGN_OPS:
            base = write_base(body, i)
        elif t.text in ("++", "--"):
            if i + 1 < len(body) and is_ident(body[i + 1]):
                base = body[i + 1].text
            else:
                base = write_base(body, i)
        elif t.text in (".", "->") and i + 2 < len(body) and \
                body[i + 1].text in MUTATING_CALLS and \
                body[i + 2].text == "(":
            base = write_base(body, i)
        if base is None:
            continue
        if base == "this":
            return body[i].line
        if base not in locals_:
            return body[i].line
    return None


def check_nondeterministic_iteration_builtin(toks, path):
    findings = []
    unordered, aliases = builtin_unordered_names(toks)
    i = 0
    while i < len(toks):
        if toks[i].text != "for":
            i += 1
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            i += 1
            continue
        close = match_paren(toks, i + 1)
        head = toks[i + 2:close]
        # Range-for: a ':' at top nesting level inside the head.
        colon = None
        depth = 0
        for k, t in enumerate(head):
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == ":" and depth == 0:
                colon = k
                break
        over_unordered = False
        loop_vars = []
        if colon is not None:
            range_expr = head[colon + 1:]
            over_unordered = any(
                t.text in ("unordered_map", "unordered_set")
                or t.text in unordered or t.text in aliases
                for t in range_expr)
            loop_vars = [t.text for t in head[:colon]
                         if is_ident(t) and t.text not in TYPE_KEYWORDS]
        else:
            # Classic for: iterator walk `for (auto it = c.begin(); ...`
            for k, t in enumerate(head):
                if t.text == "begin" and k >= 2 and \
                        head[k - 1].text in (".", "->") and \
                        head[k - 2].text in unordered:
                    over_unordered = True
            loop_vars = [t.text for t in head
                         if is_ident(t) and t.text not in TYPE_KEYWORDS]
        if not over_unordered:
            i = close + 1
            continue
        if close + 1 < len(toks) and toks[close + 1].text == "{":
            body_end = match_brace(toks, close + 1)
            body = toks[close + 2:body_end]
        else:
            body_end = close + 1
            while body_end < len(toks) and \
                    toks[body_end].text != ";":
                body_end += 1
            body = toks[close + 1:body_end]
        wline = body_writes_external(body, loop_vars)
        if wline is not None:
            findings.append(Finding(
                "densim-nondeterministic-iteration", path, toks[i].line,
                "iteration over an unordered container writes "
                "sim-visible state (write at line {}); iteration order "
                "is unspecified — iterate a sorted snapshot or use "
                "std::map/std::set".format(wline)))
        i = close + 1
    return findings


def check_unseeded_entropy_builtin(toks, path):
    findings = []
    for i, t in enumerate(toks):
        prev = toks[i - 1].text if i > 0 else ""
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        qualified_std = prev == "::" and i >= 2 and \
            toks[i - 2].text == "std"
        plain = prev not in (".", "->", "::")
        if t.text in ENTROPY_FUNCS and nxt == "(" and \
                (plain or qualified_std):
            findings.append(Finding(
                "densim-unseeded-entropy", path, t.line,
                "call to {}() draws wall-clock/ambient entropy; use a "
                "seeded densim::Rng stream or simulated time".format(
                    t.text)))
        elif t.text in ENTROPY_TYPES and (plain or qualified_std):
            findings.append(Finding(
                "densim-unseeded-entropy", path, t.line,
                "std::{} is banned in engine code; all randomness "
                "flows through explicitly seeded densim::Rng "
                "streams".format(t.text)))
        elif t.text in CLOCK_NAMES and nxt == "::" and \
                i + 2 < len(toks) and toks[i + 2].text == "now":
            findings.append(Finding(
                "densim-unseeded-entropy", path, t.line,
                "std::chrono::{}::now() reads the wall clock inside "
                "engine code; simulation time must come from the "
                "event loop".format(t.text)))
        elif t.text in ("map", "set") and qualified_std and nxt == "<":
            end = skip_template_args(toks, i + 1)
            arg = toks[i + 2:end - 1]
            depth = 0
            first_arg = []
            for a in arg:
                if a.text == "<":
                    depth += 1
                elif a.text in (">", ">>"):
                    depth -= 1 if a.text == ">" else 2
                elif a.text == "," and depth == 0:
                    break
                first_arg.append(a)
            if any(a.text == "*" for a in first_arg):
                findings.append(Finding(
                    "densim-unseeded-entropy", path, t.line,
                    "pointer key in an ordered container: address "
                    "order is allocation (ASLR) entropy and varies "
                    "run to run; key on a stable id instead"))
    return findings


def builtin_function_bodies(toks):
    """Yield (start, end) token ranges of probable function bodies."""
    i = 0
    while i < len(toks):
        if toks[i].text != "{":
            i += 1
            continue
        # Look back past modifiers/ctor-initializers for a ')'.
        k = i - 1
        hops = 0
        is_func = False
        while k >= 0 and hops < 24:
            t = toks[k].text
            if t == ")":
                is_func = True
                break
            if t in ("const", "noexcept", "override", "final",
                     "mutable", "->", "::", ",", "(", "&", "*",
                     ">", "<") or is_ident(toks[k]):
                k -= 1
                hops += 1
                continue
            break
        if is_func:
            end = match_brace(toks, i)
            yield i, end
            i = end + 1
        else:
            i += 1


def check_arena_lifo_builtin(toks, path):
    findings = []
    for start, end in builtin_function_bodies(toks):
        body = toks[start:end + 1]
        stack = []  # (marker name or None, depth, line)
        depth = 0
        i = 0
        while i < len(body):
            t = body[i]
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                while stack and stack[-1][1] > depth:
                    name, _, mline = stack.pop()
                    findings.append(Finding(
                        "densim-arena-lifo", path, mline,
                        "Arena mark '{}' is not released before its "
                        "scope ends; mark/release must be lexically "
                        "paired (DESIGN.md Sec. 12)".format(
                            name or "<unnamed>")))
            elif t.text == "return" and stack:
                findings.append(Finding(
                    "densim-arena-lifo", path, t.line,
                    "return crosses {} outstanding Arena mark(s) "
                    "(first marked at line {}); release before every "
                    "exit path".format(len(stack), stack[0][2])))
            elif t.text == "mark" and i >= 1 and \
                    body[i - 1].text in (".", "->") and \
                    i + 2 < len(body) and body[i + 1].text == "(" and \
                    body[i + 2].text == ")":
                # Assignment target: first '=' LHS in this statement.
                k = i
                name = None
                while k >= 0 and body[k].text not in (";", "{", "}"):
                    if body[k].text == "=" and is_ident(body[k - 1]):
                        name = body[k - 1].text
                        break
                    k -= 1
                stack.append((name, depth, t.line))
            elif t.text == "release" and i >= 1 and \
                    body[i - 1].text in (".", "->") and \
                    i + 1 < len(body) and body[i + 1].text == "(":
                argend = match_paren(body, i + 1)
                argname = next((a.text for a in body[i + 2:argend]
                                if is_ident(a)), None)
                if not stack:
                    findings.append(Finding(
                        "densim-arena-lifo", path, t.line,
                        "Arena release without an outstanding mark in "
                        "this function"))
                else:
                    top = stack[-1]
                    if argname is not None and top[0] is not None and \
                            argname != top[0]:
                        findings.append(Finding(
                            "densim-arena-lifo", path, t.line,
                            "out-of-LIFO-order Arena release: '{}' "
                            "released while '{}' (marked later, line "
                            "{}) is still outstanding".format(
                                argname, top[0], top[2])))
                        # Pop the named marker if it is on the stack.
                        for j in range(len(stack) - 1, -1, -1):
                            if stack[j][0] == argname:
                                stack.pop(j)
                                break
                    else:
                        stack.pop()
            i += 1
        for name, _, mline in stack:
            findings.append(Finding(
                "densim-arena-lifo", path, mline,
                "Arena mark '{}' is never released in this "
                "function".format(name or "<unnamed>")))
    return findings


def check_hot_layout_builtin(toks, path):
    findings = []
    for i, t in enumerate(toks):
        if t.text == "vector" and i + 3 < len(toks) and \
                toks[i + 1].text == "<" and \
                toks[i + 2].text == "bool" and \
                toks[i + 3].text in (">", ">>"):
            findings.append(Finding(
                "densim-hot-layout", path, t.line,
                "std::vector<bool> is a bit-packed proxy container "
                "(no .data(), no vectorizable loads); hot-path flags "
                "use std::vector<std::uint8_t> (DESIGN.md Sec. 12)"))
        elif t.text in ("list", "forward_list") and i >= 2 and \
                toks[i - 1].text == "::" and \
                toks[i - 2].text == "std" and \
                i + 1 < len(toks) and toks[i + 1].text == "<":
            findings.append(Finding(
                "densim-hot-layout", path, t.line,
                "std::{} is a non-contiguous node container; SoA "
                "hot-path state must live in flat arrays".format(
                    t.text)))
    return findings


def check_raw_double_boundary_builtin(toks, path, allow):
    if not path.endswith(".hh"):
        return []
    findings = []
    paren = 0
    for i, t in enumerate(toks):
        if t.text == "(":
            paren += 1
        elif t.text == ")":
            paren -= 1
        if t.text != "double" or paren <= 0:
            continue
        prev = toks[i - 1].text if i > 0 else ""
        if prev == "<":  # template argument, e.g. vector<double>
            continue
        if i + 1 >= len(toks) or not is_ident(toks[i + 1]):
            continue
        name = toks[i + 1].text
        after = toks[i + 2].text if i + 2 < len(toks) else ""
        if after not in (",", ")", "="):
            continue
        if name in densim_lint.DIMENSIONLESS:
            continue
        if not densim_lint.UNIT_NAME_RE.match(name):
            continue
        if "{}:{}".format(path, name) in allow:
            continue
        findings.append(Finding(
            "densim-raw-double-boundary", path, t.line,
            "raw `double {}` parameter crosses a header API boundary; "
            "use a typed quantity from core/units.hh or add "
            "'{}:{}' to tools/lint/raw_double_allowlist.txt with a "
            "review".format(name, path, name)))
    return findings


def run_builtin(path, rel, checks, allow):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    toks = tokenize(text)
    nolint = nolint_lines(text)
    findings = []
    if "densim-nondeterministic-iteration" in checks:
        findings += check_nondeterministic_iteration_builtin(toks, rel)
    if "densim-unseeded-entropy" in checks and \
            not rel.startswith(ENTROPY_ALLOW_PREFIXES):
        findings += check_unseeded_entropy_builtin(toks, rel)
    if "densim-arena-lifo" in checks:
        findings += check_arena_lifo_builtin(toks, rel)
    if "densim-hot-layout" in checks:
        findings += check_hot_layout_builtin(toks, rel)
    if "densim-raw-double-boundary" in checks:
        findings += check_raw_double_boundary_builtin(toks, rel, allow)
    findings = [f for f in findings if not suppressed(f, nolint)]
    # Appended after the NOLINT filter: a suppression-policy violation
    # cannot suppress the policy check.
    if "densim-unjustified-suppression" in checks:
        findings += check_unjustified_suppression(text, rel)
    return findings


# --------------------------------------------------------------------
# Clang AST-JSON frontend

def find_clang():
    for name in ("clang++", "clang", "clang++-19", "clang++-18",
                 "clang++-17", "clang++-16", "clang++-15", "clang++-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


class AstWalker:
    """Streams clang's -ast-dump=json nodes in source order, tracking
    the current file/line (clang omits both when unchanged)."""

    def __init__(self, main_file):
        self.main_file = os.path.abspath(main_file)
        self.file = None
        self.line = 0

    def upd(self, loc):
        if not isinstance(loc, dict):
            return
        for key in ("spellingLoc", "expansionLoc"):
            if key in loc:
                self.upd(loc[key])
                return
        if "file" in loc:
            self.file = loc["file"]
        if "line" in loc:
            self.line = loc["line"]

    def touch(self, node):
        self.upd(node.get("loc"))
        self.upd(node.get("range", {}).get("begin"))

    def in_main(self):
        if self.file is None:
            return True  # clang leaves the main file implicit.
        return os.path.abspath(self.file) == self.main_file


def walk_nodes(node, walker, visit):
    """DFS in emission (source) order, calling visit(node, walker)."""
    if not isinstance(node, dict):
        return
    walker.touch(node)
    line_here = walker.line
    prune = visit(node, walker, line_here)
    if prune:
        return
    for child in node.get("inner", []) or []:
        walk_nodes(child, walker, visit)


def subtree_nodes(node):
    stack = [node]
    while stack:
        n = stack.pop()
        if isinstance(n, dict):
            yield n
            stack.extend(n.get("inner", []) or [])


def qual_type(node):
    return (node.get("type") or {}).get("qualType", "")


UNORDERED_TYPE_RE = re.compile(r"unordered_(map|set)\b")
PTR_KEY_RE = re.compile(r"\bstd::(map|set)<[^,<>]*\*")
LIST_TYPE_RE = re.compile(r"\bstd::(__cxx11::)?(forward_)?list<")


def clang_body_writes_external(body):
    local_ids = {n.get("id") for n in subtree_nodes(body)
                 if n.get("kind") in ("VarDecl",)}

    def target_external(lhs):
        for n in subtree_nodes(lhs):
            if n.get("kind") == "CXXThisExpr":
                return True
            if n.get("kind") == "DeclRefExpr":
                ref = n.get("referencedDecl") or {}
                if ref.get("kind") in ("VarDecl", "ParmVarDecl",
                                       "FieldDecl") and \
                        ref.get("id") not in local_ids:
                    return True
        return False

    for n in subtree_nodes(body):
        kind = n.get("kind")
        inner = n.get("inner") or []
        if kind == "BinaryOperator" and n.get("opcode") == "=" and inner:
            if target_external(inner[0]):
                return True
        elif kind == "CompoundAssignOperator" and inner:
            if target_external(inner[0]):
                return True
        elif kind == "UnaryOperator" and \
                n.get("opcode") in ("++", "--") and inner:
            if target_external(inner[0]):
                return True
        elif kind == "CXXOperatorCallExpr" and inner and \
                "operator=" in json.dumps(inner[0])[:400]:
            if len(inner) > 1 and target_external(inner[1]):
                return True
        elif kind == "CXXMemberCallExpr" and inner:
            member = inner[0]
            if member.get("kind") == "MemberExpr" and \
                    member.get("name") in MUTATING_CALLS:
                if target_external(member):
                    return True
    return False


def clang_collect_arena_events(body, walker):
    """(kind, name, depth, line) events in source order."""
    events = []

    def rec(node, depth):
        if not isinstance(node, dict):
            return
        walker.touch(node)
        line = walker.line
        kind = node.get("kind")
        if kind == "ReturnStmt":
            events.append(("return", None, depth, line))
        if kind == "VarDecl":
            for n in subtree_nodes(node):
                if n.get("kind") == "CXXMemberCallExpr":
                    mem = (n.get("inner") or [{}])[0]
                    if mem.get("kind") == "MemberExpr" and \
                            mem.get("name") == "mark" and \
                            "Arena" in json.dumps(
                                n.get("inner"))[:600]:
                        events.append(("mark", node.get("name"),
                                       depth, line))
                        return  # Children handled; avoid double count.
        if kind == "CXXMemberCallExpr":
            inner = node.get("inner") or []
            mem = inner[0] if inner else {}
            if mem.get("kind") == "MemberExpr" and \
                    mem.get("name") in ("mark", "release") and \
                    "Arena" in json.dumps(inner)[:600]:
                if mem.get("name") == "mark":
                    events.append(("mark", None, depth, line))
                else:
                    arg = None
                    for n in subtree_nodes(node):
                        if n.get("kind") == "DeclRefExpr":
                            ref = n.get("referencedDecl") or {}
                            if ref.get("kind") == "VarDecl":
                                arg = ref.get("name")
                                break
                    events.append(("release", arg, depth, line))
                return
        child_depth = depth + 1 if kind == "CompoundStmt" else depth
        for child in node.get("inner", []) or []:
            rec(child, child_depth)

    rec(body, 0)
    return events


def arena_rule(events, path, func_line):
    findings = []
    stack = []
    prev_depth = 0
    for kind, name, depth, line in events:
        if depth < prev_depth:
            while stack and stack[-1][1] > depth:
                mname, _, mline = stack.pop()
                findings.append(Finding(
                    "densim-arena-lifo", path, mline,
                    "Arena mark '{}' is not released before its scope "
                    "ends; mark/release must be lexically paired "
                    "(DESIGN.md Sec. 12)".format(mname or "<unnamed>")))
        prev_depth = depth
        if kind == "mark":
            stack.append((name, depth, line))
        elif kind == "release":
            if not stack:
                findings.append(Finding(
                    "densim-arena-lifo", path, line,
                    "Arena release without an outstanding mark in "
                    "this function"))
            else:
                top = stack[-1]
                if name is not None and top[0] is not None and \
                        name != top[0]:
                    findings.append(Finding(
                        "densim-arena-lifo", path, line,
                        "out-of-LIFO-order Arena release: '{}' "
                        "released while '{}' (marked later, line {}) "
                        "is still outstanding".format(
                            name, top[0], top[2])))
                    for j in range(len(stack) - 1, -1, -1):
                        if stack[j][0] == name:
                            stack.pop(j)
                            break
                else:
                    stack.pop()
        elif kind == "return" and stack:
            findings.append(Finding(
                "densim-arena-lifo", path, line,
                "return crosses {} outstanding Arena mark(s) (first "
                "marked at line {}); release before every exit "
                "path".format(len(stack), stack[0][2])))
    for name, _, mline in stack:
        findings.append(Finding(
            "densim-arena-lifo", path, mline,
            "Arena mark '{}' is never released in this function "
            "(function at line {})".format(name or "<unnamed>",
                                           func_line)))
    return findings


def run_clang(clang, path, rel, repo, checks, allow):
    cmd = [clang, "-std=c++20", "-x", "c++", "-fsyntax-only",
           "-I", os.path.join(repo, "src"),
           "-Xclang", "-ast-dump=json", path]
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          check=False)
    if proc.returncode != 0 or not proc.stdout.strip():
        print("run_densim_tidy: NOTE: clang could not parse {} — "
              "falling back to the builtin frontend for this file"
              .format(rel), file=sys.stderr)
        return run_builtin(path, rel, checks, allow)
    try:
        root = json.loads(proc.stdout)
    except json.JSONDecodeError:
        print("run_densim_tidy: NOTE: unparsable AST JSON for {} — "
              "falling back to the builtin frontend".format(rel),
              file=sys.stderr)
        return run_builtin(path, rel, checks, allow)

    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    nolint = nolint_lines(text)
    findings = []
    walker = AstWalker(path)
    entropy_on = "densim-unseeded-entropy" in checks and \
        not rel.startswith(ENTROPY_ALLOW_PREFIXES)

    def visit(node, w, line):
        if not w.in_main():
            return False
        kind = node.get("kind")
        qt = qual_type(node)
        if kind == "CXXForRangeStmt" and \
                "densim-nondeterministic-iteration" in checks:
            range_type = ""
            for n in subtree_nodes(node):
                if n.get("kind") == "VarDecl" and \
                        n.get("name") == "__range1":
                    range_type = qual_type(n)
                    break
            if UNORDERED_TYPE_RE.search(range_type):
                body = (node.get("inner") or [None])[-1]
                if body and clang_body_writes_external(body):
                    findings.append(Finding(
                        "densim-nondeterministic-iteration", rel, line,
                        "iteration over {} writes sim-visible state; "
                        "iteration order is unspecified — iterate a "
                        "sorted snapshot or use std::map/std::set"
                        .format(range_type)))
        if entropy_on:
            if kind == "DeclRefExpr":
                ref = node.get("referencedDecl") or {}
                if ref.get("kind") == "FunctionDecl" and \
                        ref.get("name") in ENTROPY_FUNCS:
                    findings.append(Finding(
                        "densim-unseeded-entropy", rel, line,
                        "call to {}() draws wall-clock/ambient "
                        "entropy; use a seeded densim::Rng stream or "
                        "simulated time".format(ref.get("name"))))
                if ref.get("name") == "now" and \
                        "clock" in (ref.get("mangledName") or ""):
                    findings.append(Finding(
                        "densim-unseeded-entropy", rel, line,
                        "std::chrono clock ::now() reads the wall "
                        "clock inside engine code; simulation time "
                        "must come from the event loop"))
            if kind in ("VarDecl", "FieldDecl", "ParmVarDecl"):
                if any(t in qt for t in ENTROPY_TYPES):
                    findings.append(Finding(
                        "densim-unseeded-entropy", rel, line,
                        "type {} is banned in engine code; all "
                        "randomness flows through explicitly seeded "
                        "densim::Rng streams".format(qt)))
                if PTR_KEY_RE.search(qt):
                    findings.append(Finding(
                        "densim-unseeded-entropy", rel, line,
                        "pointer key in an ordered container ({}): "
                        "address order is allocation (ASLR) entropy "
                        "and varies run to run; key on a stable id "
                        "instead".format(qt)))
        if kind in ("VarDecl", "FieldDecl", "ParmVarDecl") and \
                "densim-hot-layout" in checks:
            if "vector<bool" in qt.replace(" ", ""):
                findings.append(Finding(
                    "densim-hot-layout", rel, line,
                    "std::vector<bool> is a bit-packed proxy "
                    "container; hot-path flags use "
                    "std::vector<std::uint8_t> (DESIGN.md Sec. 12)"))
            if LIST_TYPE_RE.search(qt):
                findings.append(Finding(
                    "densim-hot-layout", rel, line,
                    "{} is a non-contiguous node container; SoA "
                    "hot-path state must live in flat arrays"
                    .format(qt)))
        if kind == "ParmVarDecl" and \
                "densim-raw-double-boundary" in checks and \
                rel.endswith(".hh"):
            name = node.get("name")
            if qt == "double" and name and \
                    name not in densim_lint.DIMENSIONLESS and \
                    densim_lint.UNIT_NAME_RE.match(name) and \
                    "{}:{}".format(rel, name) not in allow:
                findings.append(Finding(
                    "densim-raw-double-boundary", rel, line,
                    "raw `double {}` parameter crosses a header API "
                    "boundary; use a typed quantity from "
                    "core/units.hh or add '{}:{}' to "
                    "tools/lint/raw_double_allowlist.txt with a "
                    "review".format(name, rel, name)))
        if kind in ("FunctionDecl", "CXXMethodDecl",
                    "CXXConstructorDecl", "CXXDestructorDecl") and \
                "densim-arena-lifo" in checks:
            body = None
            for child in node.get("inner", []) or []:
                if isinstance(child, dict) and \
                        child.get("kind") == "CompoundStmt":
                    body = child
            if body is not None:
                # Collect with a cloned walker so the main DFS keeps
                # its own file/line state (clang omits "line" when
                # unchanged, so the tracker must advance in step with
                # the emission order of the main walk).
                sub = AstWalker(path)
                sub.file, sub.line = w.file, w.line
                events = clang_collect_arena_events(body, sub)
                if any(e[0] in ("mark", "release") for e in events):
                    findings.extend(arena_rule(events, rel, line))
        return False

    walk_nodes(root, walker, visit)
    findings = [f for f in findings if not suppressed(f, nolint)]
    # Text-based and NOLINT-exempt by design (see run_builtin).
    if "densim-unjustified-suppression" in checks:
        findings += check_unjustified_suppression(text, rel)
    return findings


# --------------------------------------------------------------------
# Driver

def tree_files(repo, check):
    out = []
    for scope in CHECK_SCOPES[check]:
        root = os.path.join(repo, scope)
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith((".cc", ".hh")):
                    full = os.path.join(dirpath, name)
                    rel = os.path.relpath(full, repo).replace(
                        os.sep, "/")
                    out.append((full, rel))
    return out


def scan(repo, files, checks, frontend, use_cache=True):
    """Run `checks` over `files` [(full, rel)]; return findings."""
    allow = densim_lint.load_allowlist(repo)
    clang = find_clang() if frontend in ("auto", "clang") else None
    if frontend == "clang" and clang is None:
        print("run_densim_tidy: ERROR: --frontend=clang but no clang "
              "binary on PATH", file=sys.stderr)
        sys.exit(2)
    per_file_checks = checks - INTERPROCEDURAL_CHECKS
    findings = []
    if per_file_checks:
        for full, rel in files:
            if clang is not None:
                findings += run_clang(clang, full, rel, repo,
                                      per_file_checks, allow)
            else:
                findings += run_builtin(full, rel, per_file_checks,
                                        allow)
    if "densim-hot-effects" in checks:
        findings += hot_effects_findings(repo, files, frontend,
                                         use_cache)
    return findings


def run_tree(repo, checks, frontend, use_cache=True, only_files=None):
    """only_files: optional set of repo-relative paths the per-file
    checks are restricted to (--changed-only). The hot-effects link
    always covers its whole scope — the summary cache keeps that
    cheap."""
    per_file = {}
    for check in checks:
        if check in INTERPROCEDURAL_CHECKS:
            continue
        for full, rel in tree_files(repo, check):
            if only_files is not None and rel not in only_files:
                continue
            per_file.setdefault((full, rel), set()).add(check)
    allow = densim_lint.load_allowlist(repo)
    clang = find_clang() if frontend in ("auto", "clang") else None
    findings = []
    for (full, rel), file_checks in sorted(per_file.items()):
        if clang is not None:
            findings += run_clang(clang, full, rel, repo, file_checks,
                                  allow)
        else:
            findings += run_builtin(full, rel, file_checks, allow)
    if "densim-hot-effects" in checks:
        findings += hot_effects_findings(
            repo, tree_files(repo, "densim-hot-effects"), frontend,
            use_cache)
    return findings


def changed_files(repo, base):
    """Repo-relative paths changed vs `base` (committed and working
    tree), or None if git cannot answer (full scan then)."""
    try:
        proc = subprocess.run(
            ["git", "-C", repo, "diff", "--name-only", base, "--"],
            capture_output=True, text=True, check=True)
        return {line.strip() for line in proc.stdout.splitlines()
                if line.strip()}
    except (OSError, subprocess.CalledProcessError):
        return None


# --------------------------------------------------------------------
# SARIF 2.1.0 output (GitHub code scanning)

def sarif_report(findings, repo):
    rules = []
    for check in ALL_CHECKS:
        rules.append({
            "id": check,
            "shortDescription": {"text": RULE_DESCRIPTIONS[check]},
            "defaultConfiguration": {"level": "error"},
        })
    results = []
    for f in findings:
        results.append({
            "ruleId": f.check,
            "ruleIndex": ALL_CHECKS.index(f.check),
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, int(f.line))},
                },
            }],
        })
    return {
        "$schema": "https://docs.oasis-open.org/sarif/sarif/v2.1.0/"
                   "os/schemas/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "densim-tidy",
                    "informationUri":
                        "https://example.invalid/densim/tools/tidy",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file://" + repo.rstrip("/") + "/"},
            },
            "results": results,
        }],
    }


def validate_sarif(doc):
    """Structural sanity of the emitted SARIF (used by check.sh)."""
    assert doc["version"] == "2.1.0"
    assert isinstance(doc["runs"], list) and doc["runs"]
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "densim-tidy"
    rule_ids = {r["id"] for r in driver["rules"]}
    for res in run["results"]:
        assert res["ruleId"] in rule_ids
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"]
        assert loc["region"]["startLine"] >= 1
        assert res["message"]["text"]
    return True


# --------------------------------------------------------------------
# Self-test over the fixture TUs

FIXTURE_CHECKS = {
    "nondeterministic_iteration": "densim-nondeterministic-iteration",
    "unseeded_entropy": "densim-unseeded-entropy",
    "arena_lifo": "densim-arena-lifo",
    "hot_layout": "densim-hot-layout",
    "raw_double_boundary": "densim-raw-double-boundary",
    "hot_effects": "densim-hot-effects",
    "unjustified_suppression": "densim-unjustified-suppression",
}

# The reason string may wrap across lines as adjacent literals, so
# match one-or-more quoted pieces inside the macro parens.
HOT_MUTATION_RE = re.compile(
    r"DENSIM_ALLOCATES\s*\(\s*(?:\"[^\"]*\"\s*)+\)")


def hot_effects_negative_test(repo, frontend):
    """The gate must FAIL when a DENSIM_ALLOCATES sanction is deleted
    from a known allocating path: strip every DENSIM_ALLOCATES from a
    real src file (in memory) and assert the whole-tree link reports
    findings. Returns the number of failures (0 or 1)."""
    files = tree_files(repo, "densim-hot-effects")
    candidates = []
    for full, rel in files:
        if rel.endswith("core/effects.hh"):
            continue  # The macro definitions, not a use.
        try:
            with open(full, encoding="utf-8") as fh:
                text = fh.read()
        except OSError:
            continue
        if HOT_MUTATION_RE.search(text):
            candidates.append((rel, text))
    if not candidates:
        print("run_densim_tidy: SELF-TEST FAILED [{}] — no src file "
              "carries a DENSIM_ALLOCATES sanction to mutate"
              .format(frontend))
        return 1
    for rel, text in candidates:
        mutated = HOT_MUTATION_RE.sub("", text)
        got = hot_effects_findings(repo, files, frontend,
                                   override={rel: mutated})
        if got:
            print("run_densim_tidy: negative self-test passed [{}] — "
                  "stripping DENSIM_ALLOCATES from {} produced {} "
                  "hot-effects finding(s)".format(frontend, rel,
                                                  len(got)))
            return 0
    print("run_densim_tidy: SELF-TEST FAILED [{}] — stripping every "
          "DENSIM_ALLOCATES sanction (tried {} file(s)) produced no "
          "findings; the hot-effects gate is not actually gating"
          .format(frontend, len(candidates)))
    return 1


def self_test(repo, frontend="auto"):
    fixdir = os.path.join(repo, "tests", "tidy_fixtures")
    if not os.path.isdir(fixdir):
        print("run_densim_tidy: SELF-TEST FAILED — fixture directory "
              "{} is missing".format(fixdir))
        return 1
    if frontend == "auto":
        frontends = ["builtin"]
        if find_clang() is not None:
            frontends.append("clang")
    elif frontend == "clang" and find_clang() is None:
        print("run_densim_tidy: SELF-TEST FAILED — --frontend=clang "
              "but no clang binary on PATH")
        return 1
    else:
        frontends = [frontend]
    failures = 0
    for frontend in frontends:
        for stem, check in sorted(FIXTURE_CHECKS.items()):
            for flavor in ("bad", "good"):
                matches = [n for n in sorted(os.listdir(fixdir))
                           if n.startswith(
                               "{}_{}".format(stem, flavor))]
                if not matches:
                    print("run_densim_tidy: SELF-TEST FAILED — no "
                          "{}_{} fixture".format(stem, flavor))
                    failures += 1
                    continue
                for name in matches:
                    full = os.path.join(fixdir, name)
                    rel = "tests/tidy_fixtures/" + name
                    got = scan(repo, [(full, rel)], set(ALL_CHECKS),
                               frontend)
                    hits = [f for f in got if f.check == check]
                    if flavor == "bad" and not hits:
                        print("run_densim_tidy: SELF-TEST FAILED "
                              "[{}] — known-bad fixture {} was NOT "
                              "flagged by {}".format(frontend, name,
                                                     check))
                        failures += 1
                    elif flavor == "good" and hits:
                        print("run_densim_tidy: SELF-TEST FAILED "
                              "[{}] — known-good fixture {} was "
                              "flagged:".format(frontend, name))
                        for f in hits:
                            print("    {}".format(f))
                        failures += 1
        if os.path.isfile(os.path.join(repo, "src", "core",
                                       "effects.hh")):
            failures += hot_effects_negative_test(repo, frontend)
    if failures == 0:
        print("run_densim_tidy: self-test passed — every known-bad "
              "fixture flagged, every known-good fixture clean "
              "(frontends: {})".format(", ".join(frontends)))
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description="densim AST-grounded determinism & lifetime "
                    "analyzer (portable driver)")
    parser.add_argument("--repo", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "clang", "builtin"))
    parser.add_argument("--checks", default=",".join(ALL_CHECKS),
                        help="comma-separated subset of checks")
    parser.add_argument("--list-checks", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--sarif", metavar="OUT",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--changed-only", action="store_true",
                        help="per-file checks scan only files changed "
                             "vs --changed-base; the hot-effects link "
                             "still covers the whole tree (cached)")
    parser.add_argument("--changed-base", default="HEAD",
                        help="git ref for --changed-only (default "
                             "HEAD)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the hot-effects summary cache")
    parser.add_argument("files", nargs="*",
                        help="specific files (default: tree scope scan)")
    args = parser.parse_args()

    if args.list_checks:
        for check in ALL_CHECKS:
            print(check)
        return 0

    repo = os.path.abspath(args.repo)
    if args.self_test:
        return self_test(repo, args.frontend)

    checks = set()
    for name in args.checks.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in ALL_CHECKS:
            print("run_densim_tidy: unknown check '{}'".format(name),
                  file=sys.stderr)
            return 2
        checks.add(name)

    use_cache = not args.no_cache
    if args.files:
        files = [(os.path.abspath(f),
                  os.path.relpath(os.path.abspath(f), repo).replace(
                      os.sep, "/"))
                 for f in args.files]
        findings = scan(repo, files, checks, args.frontend, use_cache)
    else:
        only = None
        if args.changed_only:
            only = changed_files(repo, args.changed_base)
            if only is None:
                print("run_densim_tidy: NOTE: git could not resolve "
                      "--changed-base {}; falling back to a full "
                      "scan".format(args.changed_base),
                      file=sys.stderr)
            else:
                print("run_densim_tidy: incremental mode — {} changed "
                      "file(s) vs {}".format(len(only),
                                             args.changed_base))
        findings = run_tree(repo, checks, args.frontend, use_cache,
                            only_files=only)

    if args.sarif:
        doc = sarif_report(findings, repo)
        validate_sarif(doc)
        with open(args.sarif, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
        print("run_densim_tidy: SARIF written to {}".format(
            args.sarif))

    for f in findings:
        print(f)
    if findings:
        print("run_densim_tidy: {} finding(s)".format(len(findings)),
              file=sys.stderr)
        return 1
    frontend = "clang" if (args.frontend in ("auto", "clang")
                           and find_clang()) else "builtin"
    print("run_densim_tidy: clean ({} checks, {} frontend)".format(
        len(checks), frontend))
    return 0


if __name__ == "__main__":
    sys.exit(main())
