/**
 * @file
 * Fixed-width text table and CSV writers.
 *
 * Every bench binary regenerates one of the paper's tables or figure
 * series; TableWriter renders the rows both as aligned text (for the
 * console) and CSV (for plotting), so the output format is uniform
 * across experiments.
 */

#ifndef DENSIM_UTIL_TABLE_HH
#define DENSIM_UTIL_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace densim {

/**
 * Builder for a rectangular table of string cells with a header row.
 * Numeric helpers format with a fixed precision.
 */
class TableWriter
{
  public:
    /** Create a table with the given column headers. */
    explicit TableWriter(std::vector<std::string> headers);

    /** Start a new (empty) row. */
    TableWriter &newRow();

    /** Append a string cell to the current row. */
    TableWriter &cell(const std::string &value);

    /** Append a formatted numeric cell (fixed, @p precision digits). */
    TableWriter &cell(double value, int precision = 2);

    /** Append an integer cell. */
    TableWriter &cell(long long value);

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Render as an aligned text table. */
    std::string toText() const;

    /** Render as CSV (RFC-4180-style quoting for commas/quotes). */
    std::string toCsv() const;

    /** Write the text rendering to @p os. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (helper shared with benches). */
std::string formatFixed(double value, int precision);

} // namespace densim

#endif // DENSIM_UTIL_TABLE_HH
