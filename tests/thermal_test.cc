/**
 * @file
 * Unit and property tests for the thermal substrate: heat sinks,
 * Eq. (1), transient trackers, the RC-network solver, the
 * HotSpot-class chip model, the coupling map (including the Fig. 2
 * calibration), and the Fig. 5 analytical entry-temperature model.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "airflow/first_law.hh"
#include "thermal/coupling_map.hh"
#include "thermal/entry_model.hh"
#include "thermal/heatsink.hh"
#include "thermal/hotspot_model.hh"
#include "thermal/rc_network.hh"
#include "thermal/simple_peak_model.hh"
#include "thermal/transient.hh"

namespace densim {
namespace {

// ---------------------------------------------------------------- sinks

TEST(HeatSink, TableIIIPresets)
{
    EXPECT_DOUBLE_EQ(HeatSink::fin18().rExt.value(), 1.578);
    EXPECT_DOUBLE_EQ(HeatSink::fin30().rExt.value(), 1.056);
    EXPECT_EQ(HeatSink::fin18().finCount, 18);
    EXPECT_EQ(HeatSink::fin30().finCount, 30);
}

TEST(HeatSink, ThetaMatchesTableIII)
{
    EXPECT_NEAR(HeatSink::fin18().theta(Watts(10.0)).value(), 4.41 - 0.896, 1e-9);
    EXPECT_NEAR(HeatSink::fin30().theta(Watts(10.0)).value(), 4.45 - 0.916, 1e-9);
}

TEST(HeatSink, MoreFinsLowerResistance)
{
    FinHeatsinkGeometry g18;
    g18.finCount = 18;
    FinHeatsinkGeometry g30 = g18;
    g30.finCount = 30;
    EXPECT_LT(finHeatsinkResistance(g30, Cfm(6.35)).value(),
              finHeatsinkResistance(g18, Cfm(6.35)).value());
}

TEST(HeatSink, ParametricModelNearTableIIIValues)
{
    // The first-principles fin model should land within ~25% of the
    // Table III resistances at the Table III per-socket airflow —
    // evidence the presets are physically consistent.
    FinHeatsinkGeometry g18;
    g18.finCount = 18;
    FinHeatsinkGeometry g30 = g18;
    g30.finCount = 30;
    EXPECT_NEAR(finHeatsinkResistance(g18, Cfm(6.35)).value(), 1.578,
                0.25 * 1.578);
    EXPECT_NEAR(finHeatsinkResistance(g30, Cfm(6.35)).value(), 1.056,
                0.25 * 1.056);
}

TEST(HeatSink, MoreAirflowLowerResistance)
{
    FinHeatsinkGeometry g;
    EXPECT_LT(finHeatsinkResistance(g, Cfm(12.0)).value(),
              finHeatsinkResistance(g, Cfm(3.0)).value());
}

TEST(HeatSink, ChannelVelocityScalesWithFlow)
{
    FinHeatsinkGeometry g;
    EXPECT_NEAR(finChannelVelocity(g, Cfm(12.7)),
                2.0 * finChannelVelocity(g, Cfm(6.35)), 1e-9);
}

TEST(HeatSink, ImpossibleGeometryIsFatal)
{
    FinHeatsinkGeometry g;
    g.finCount = 1000; // fins wider than the base
    EXPECT_EXIT((void)finHeatsinkResistance(g, Cfm(6.35)),
                ::testing::ExitedWithCode(1), "gap");
}

// --------------------------------------------------------------- Eq. (1)

TEST(SimplePeak, MatchesHandComputedValue)
{
    // 18 W on the 18-fin sink at 45 C ambient:
    // 45 + 18 * (0.205 + 1.578) + (4.41 - 0.0896 * 18) = 79.89 C.
    SimplePeakModel model;
    const double t =
        model.peak(Celsius(45.0), Watts(18.0), HeatSink::fin18())
            .value();
    EXPECT_NEAR(t, 45.0 + 18.0 * 1.783 + 4.41 - 1.6128, 1e-9);
}

TEST(SimplePeak, Fin30CoolerAtSamePower)
{
    SimplePeakModel model;
    const double t18 =
        model.peak(Celsius(40.0), Watts(15.0), HeatSink::fin18())
            .value();
    const double t30 =
        model.peak(Celsius(40.0), Watts(15.0), HeatSink::fin30())
            .value();
    EXPECT_LT(t30, t18);
    // Fig. 9(b): the 30-fin sink is ~6-7 C cooler at high power.
    EXPECT_NEAR(t18 - t30, 15.0 * (1.578 - 1.056), 0.5);
}

TEST(SimplePeak, MaxPowerInverts)
{
    SimplePeakModel model;
    for (double amb : {20.0, 45.0, 60.0}) {
        const double p =
            model.maxPower(Celsius(95.0), Celsius(amb), HeatSink::fin18())
                .value();
        EXPECT_NEAR(
            model.peak(Celsius(amb), Watts(p), HeatSink::fin18()).value(),
            95.0, 1e-9);
    }
}

TEST(SimplePeak, MaxAmbientInverts)
{
    SimplePeakModel model;
    const double amb =
        model.maxAmbient(Celsius(95.0), Watts(13.6), HeatSink::fin30())
            .value();
    EXPECT_NEAR(
        model.peak(Celsius(amb), Watts(13.6), HeatSink::fin30()).value(),
        95.0, 1e-9);
}

TEST(SimplePeak, MaxPowerClampsAtZero)
{
    SimplePeakModel model;
    EXPECT_DOUBLE_EQ(model
                         .maxPower(Celsius(95.0), Celsius(200.0),
                                   HeatSink::fin18())
                         .value(),
                     0.0);
}

TEST(SimplePeak, MonotoneInAmbientAndPower)
{
    SimplePeakModel model;
    double last = 0.0;
    for (double p = 0.0; p <= 22.0; p += 2.0) {
        const double t =
            model.peak(Celsius(30.0), Watts(p), HeatSink::fin18())
                .value();
        EXPECT_GT(t, last);
        last = t;
    }
    EXPECT_LT(
        model.peak(Celsius(20.0), Watts(10.0), HeatSink::fin18()),
        model.peak(Celsius(40.0), Watts(10.0), HeatSink::fin18()));
}

// ------------------------------------------------------------- transient

TEST(Transient, ExactExponentialStep)
{
    FirstOrderTracker tracker(2.0, 0.0);
    tracker.step(10.0, 2.0); // one time constant
    EXPECT_NEAR(tracker.value(), 10.0 * (1.0 - std::exp(-1.0)), 1e-12);
}

TEST(Transient, StepSizeIndependence)
{
    FirstOrderTracker coarse(5.0, 20.0);
    FirstOrderTracker fine(5.0, 20.0);
    coarse.step(80.0, 1.0);
    for (int i = 0; i < 1000; ++i)
        fine.step(80.0, 0.001);
    EXPECT_NEAR(coarse.value(), fine.value(), 1e-9);
}

TEST(Transient, ConvergesToTarget)
{
    FirstOrderTracker tracker(0.5, 0.0);
    for (int i = 0; i < 100; ++i)
        tracker.step(42.0, 0.5);
    EXPECT_NEAR(tracker.value(), 42.0, 1e-6);
}

TEST(Transient, ZeroDtIsIdentity)
{
    FirstOrderTracker tracker(1.0, 7.0);
    tracker.step(100.0, 0.0);
    EXPECT_DOUBLE_EQ(tracker.value(), 7.0);
}

TEST(Transient, ResponseFractionBounds)
{
    EXPECT_DOUBLE_EQ(responseFraction(0.0, 1.0), 0.0);
    EXPECT_NEAR(responseFraction(100.0, 1.0), 1.0, 1e-12);
    EXPECT_NEAR(responseFraction(1.0, 1.0), 1.0 - std::exp(-1.0),
                1e-12);
}

// ------------------------------------------------------------ RC network

TEST(RcNetwork, SingleNodeSteadyState)
{
    RCNetwork net;
    const NodeId n = net.addNode("chip", JoulePerKelvin(1.0));
    net.connectAmbient(n, KelvinPerWatt(2.0)); // 2 C/W
    const auto temps = net.steadyState({10.0}, Celsius(25.0));
    EXPECT_NEAR(temps[n], 25.0 + 20.0, 1e-9);
}

TEST(RcNetwork, TwoNodeVoltageDivider)
{
    // power -> a --1ohm-- b --1ohm-- ambient
    RCNetwork net;
    const NodeId a = net.addNode("a", JoulePerKelvin(1.0));
    const NodeId b = net.addNode("b", JoulePerKelvin(1.0));
    net.connect(a, b, KelvinPerWatt(1.0));
    net.connectAmbient(b, KelvinPerWatt(1.0));
    const auto temps = net.steadyState({5.0, 0.0}, Celsius(0.0));
    EXPECT_NEAR(temps[b], 5.0, 1e-9);
    EXPECT_NEAR(temps[a], 10.0, 1e-9);
}

TEST(RcNetwork, SteadyStateConservesEnergy)
{
    RCNetwork net;
    std::vector<NodeId> nodes;
    for (int i = 0; i < 10; ++i) {
        std::string name("n");
        name += std::to_string(i);
        nodes.push_back(net.addNode(name, JoulePerKelvin(1.0)));
    }
    for (int i = 0; i + 1 < 10; ++i)
        net.connect(nodes[i], nodes[i + 1],
                    KelvinPerWatt(0.5 + 0.1 * i));
    net.connectAmbient(nodes[0], KelvinPerWatt(1.0));
    net.connectAmbient(nodes[9], KelvinPerWatt(2.0));
    std::vector<double> powers(10, 0.0);
    powers[3] = 7.0;
    powers[8] = 2.5;
    const auto temps = net.steadyState(powers, Celsius(20.0));
    EXPECT_NEAR(net.ambientHeatFlow(temps, Celsius(20.0)).value(), 9.5, 1e-9);
}

TEST(RcNetwork, SuperpositionHolds)
{
    // The network is linear: solving for the sum of two power
    // vectors equals the sum of solutions (relative to ambient).
    RCNetwork net;
    const NodeId a = net.addNode("a", JoulePerKelvin(1.0));
    const NodeId b = net.addNode("b", JoulePerKelvin(1.0));
    const NodeId c = net.addNode("c", JoulePerKelvin(1.0));
    net.connect(a, b, KelvinPerWatt(1.5));
    net.connect(b, c, KelvinPerWatt(0.7));
    net.connectAmbient(c, KelvinPerWatt(1.2));
    net.connectAmbient(a, KelvinPerWatt(3.0));
    const auto t1 = net.steadyState({4.0, 0.0, 0.0}, Celsius(0.0));
    const auto t2 = net.steadyState({0.0, 0.0, 6.0}, Celsius(0.0));
    const auto t12 = net.steadyState({4.0, 0.0, 6.0}, Celsius(0.0));
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(t12[i], t1[i] + t2[i], 1e-9);
}

TEST(RcNetwork, AmbientShiftsUniformly)
{
    RCNetwork net;
    const NodeId a = net.addNode("a", JoulePerKelvin(1.0));
    net.connectAmbient(a, KelvinPerWatt(1.0));
    const auto cold = net.steadyState({3.0}, Celsius(0.0));
    const auto warm = net.steadyState({3.0}, Celsius(30.0));
    EXPECT_NEAR(warm[a] - cold[a], 30.0, 1e-9);
}

TEST(RcNetwork, IsolatedNodeIsFatal)
{
    RCNetwork net;
    net.addNode("floating", JoulePerKelvin(1.0));
    EXPECT_EXIT(net.steadyState({1.0}, Celsius(0.0)),
                ::testing::ExitedWithCode(1), "singular");
}

TEST(RcNetwork, TransientConvergesToSteadyState)
{
    RCNetwork net;
    const NodeId a = net.addNode("a", JoulePerKelvin(2.0));
    const NodeId b = net.addNode("b", JoulePerKelvin(5.0));
    net.connect(a, b, KelvinPerWatt(1.0));
    net.connectAmbient(b, KelvinPerWatt(0.5));
    const std::vector<double> powers{4.0, 1.0};
    const auto steady = net.steadyState(powers, Celsius(22.0));

    std::vector<double> temps(2, 22.0);
    for (int i = 0; i < 200; ++i)
        net.transientStep(temps, powers, Celsius(22.0), Seconds(0.5));
    EXPECT_NEAR(temps[a], steady[a], 0.01);
    EXPECT_NEAR(temps[b], steady[b], 0.01);
}

TEST(RcNetwork, TransientMonotoneHeating)
{
    RCNetwork net;
    const NodeId a = net.addNode("a", JoulePerKelvin(1.0));
    net.connectAmbient(a, KelvinPerWatt(1.0));
    std::vector<double> temps{20.0};
    double last = temps[0];
    for (int i = 0; i < 20; ++i) {
        net.transientStep(temps, {5.0}, Celsius(20.0), Seconds(0.1));
        EXPECT_GE(temps[0], last);
        last = temps[0];
        EXPECT_LE(temps[0], 25.0 + 1e-9);
    }
}

TEST(RcNetwork, TransientRequiresCapacitance)
{
    RCNetwork net;
    const NodeId a = net.addNode("a", JoulePerKelvin(0.0));
    net.connectAmbient(a, KelvinPerWatt(1.0));
    std::vector<double> temps{20.0};
    EXPECT_EXIT(net.transientStep(temps, {1.0}, Celsius(20.0), Seconds(0.1)),
                ::testing::ExitedWithCode(1), "capacitance");
}

TEST(RcNetwork, SelfLoopPanics)
{
    RCNetwork net;
    const NodeId a = net.addNode("a", JoulePerKelvin(1.0));
    EXPECT_DEATH(net.connect(a, a, KelvinPerWatt(1.0)), "self-loop");
}

// ---------------------------------------------------------- HotSpot model

TEST(HotSpot, UniformMapAverageMatchesEquationOne)
{
    // By construction the uniform-map mean die temperature equals
    // T_amb + P * (R_int + R_ext) exactly.
    ChipStackParams params;
    HotSpotModel model(params, HeatSink::fin18());
    const PowerMap map = PowerMap::uniform(params.grid);
    const auto field = model.steady(Watts(15.0), map, Celsius(40.0));
    EXPECT_NEAR(field.avgT, 40.0 + 15.0 * (0.205 + 1.578), 1e-6);
}

TEST(HotSpot, UniformMapHasSmallSpread)
{
    ChipStackParams params;
    HotSpotModel model(params, HeatSink::fin30());
    const auto field =
        model.steady(Watts(18.0), PowerMap::uniform(params.grid), Celsius(30.0));
    EXPECT_LT(field.spread(), 0.5);
}

TEST(HotSpot, ConcentratedMapSpreadInPaperRange)
{
    // Fig. 9(a): lateral spread between 4 and 7 C for PCMark-class
    // workloads on the ~100 mm^2 X2150 die.
    ChipStackParams params;
    for (const HeatSink *sink :
         {&HeatSink::fin18(), &HeatSink::fin30()}) {
        HotSpotModel model(params, *sink);
        for (double power : {8.0, 12.0, 15.0, 18.0}) {
            const PowerMap map = PowerMap::concentrated(
                params.grid, defaultHotFraction(Watts(power)), HotBlock{4, 0, 0});
            const auto field = model.steady(Watts(power), map, Celsius(40.0));
            EXPECT_GE(field.spread(), 3.0)
                << sink->name << " @ " << power << " W";
            EXPECT_LE(field.spread(), 8.0)
                << sink->name << " @ " << power << " W";
        }
    }
}

TEST(HotSpot, EquationOneTracksDetailedModelWithin2C)
{
    // Fig. 10: the simplified model stays within ~2 C of the
    // validated (detailed) model across workloads and sinks.
    ChipStackParams params;
    SimplePeakModel simple;
    for (const HeatSink *sink :
         {&HeatSink::fin18(), &HeatSink::fin30()}) {
        HotSpotModel model(params, *sink);
        for (double power = 8.0; power <= 18.0; power += 1.0) {
            const PowerMap map = PowerMap::concentrated(
                params.grid, defaultHotFraction(Watts(power)), HotBlock{4, 2, 2});
            const auto field = model.steady(Watts(power), map, Celsius(45.0));
            const double predicted = simple.peak(Celsius(45.0), Watts(power), *sink).value();
            EXPECT_NEAR(predicted, field.maxT, 2.0)
                << sink->name << " @ " << power << " W";
        }
    }
}

TEST(HotSpot, SinkTimeConstantNearTableIII)
{
    // The lumped sink node should respond with roughly the 30 s
    // socket time constant.
    ChipStackParams params;
    HotSpotModel model(params, HeatSink::fin30());
    auto state = model.initialState(Celsius(20.0));
    const auto steady =
        model.steady(Watts(15.0), PowerMap::uniform(params.grid), Celsius(20.0));
    model.transientStep(state, Watts(15.0),
                        PowerMap::uniform(params.grid), Celsius(20.0),
                        Seconds(params.socketTauS));
    const auto field = model.summarize(state);
    const double frac = (field.sinkTemp - 20.0) /
                        (steady.sinkTemp - 20.0);
    EXPECT_NEAR(frac, 1.0 - std::exp(-1.0), 0.12);
}

TEST(HotSpot, HotBlockIsHottest)
{
    ChipStackParams params;
    HotSpotModel model(params, HeatSink::fin18());
    const PowerMap map =
        PowerMap::concentrated(
                params.grid, 0.7, HotBlock{2, 0, 0});
    const auto field = model.steady(Watts(15.0), map, Celsius(30.0));
    // Cell (0,0) is inside the hot block.
    EXPECT_NEAR(field.dieTemps[0], field.maxT, 0.5);
}

TEST(HotSpot, MismatchedMapGridIsFatal)
{
    ChipStackParams params;
    HotSpotModel model(params, HeatSink::fin18());
    EXPECT_EXIT(model.steady(Watts(10.0), PowerMap::uniform(4), Celsius(30.0)),
                ::testing::ExitedWithCode(1), "grid");
}

TEST(PowerMap, FractionsSumToOne)
{
    for (double hot : {0.0, 0.3, 0.7, 1.0}) {
        const PowerMap map = PowerMap::concentrated(
                8, hot, HotBlock{3, 1, 2});
        double sum = 0.0;
        for (double f : map.fractions())
            sum += f;
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST(PowerMap, DefaultHotFractionDecreasesWithPower)
{
    EXPECT_GT(defaultHotFraction(Watts(8.0)), defaultHotFraction(Watts(18.0)));
    EXPECT_GE(defaultHotFraction(Watts(100.0)), 0.25);
    EXPECT_LE(defaultHotFraction(Watts(0.0)), 0.95);
}

TEST(PowerMap, BlockOutsideGridIsFatal)
{
    EXPECT_EXIT(PowerMap::concentrated(
                8, 0.5, HotBlock{4, 6, 6}),
                ::testing::ExitedWithCode(1), "fit");
}

// ----------------------------------------------------------- coupling map

std::vector<SocketSite>
chainSites(int n, double spacing, double duct_cfm)
{
    std::vector<SocketSite> sites;
    for (int i = 0; i < n; ++i)
        sites.push_back(SocketSite{i * spacing, 0, Cfm(duct_cfm)});
    return sites;
}

TEST(CouplingMap, Figure2CartridgeCalibration)
{
    // The Fig. 2 cartridge: two upstream sockets at 15 W each share a
    // 12.7 CFM duct; the measured left-to-right air temperature
    // difference is ~8 C. Model: two sites per station.
    std::vector<SocketSite> sites{
        {0.0, 0, Cfm(12.7)}, {0.0, 0, Cfm(12.7)}, {1.6, 0, Cfm(12.7)}, {1.6, 0, Cfm(12.7)}};
    CouplingMap map(sites, CouplingParams{});
    const std::vector<double> powers{15.0, 15.0, 0.0, 0.0};
    const auto entry = map.entryTemps(powers, Celsius(18.0));
    const double diff = entry[2] - entry[0];
    EXPECT_NEAR(diff, 8.0, 1.2);
}

TEST(CouplingMap, NoUpstreamCouplingToFirstSocket)
{
    CouplingMap map(chainSites(4, 1.6, 12.7), CouplingParams{});
    const std::vector<double> powers{0.0, 10.0, 10.0, 10.0};
    EXPECT_DOUBLE_EQ(map.entryTemp(0, powers, Celsius(18.0)).value(), 18.0);
}

TEST(CouplingMap, StrictlyDownstreamOnly)
{
    CouplingMap map(chainSites(3, 1.6, 12.7), CouplingParams{});
    EXPECT_GT(map.coeff(0, 2).value(), 0.0);
    EXPECT_DOUBLE_EQ(map.coeff(2, 0).value(), 0.0);
    EXPECT_DOUBLE_EQ(map.coeff(1, 1).value(), 0.0);
}

TEST(CouplingMap, CouplingDecaysWithDistance)
{
    CouplingMap map(chainSites(6, 1.6, 12.7), CouplingParams{});
    EXPECT_GT(map.coeff(0, 1).value(), map.coeff(0, 3).value());
    EXPECT_GT(map.coeff(0, 3).value(), map.coeff(0, 5).value());
}

TEST(CouplingMap, EntryMonotoneInUpstreamPower)
{
    CouplingMap map(chainSites(4, 1.6, 12.7), CouplingParams{});
    std::vector<double> low{5.0, 5.0, 5.0, 5.0};
    std::vector<double> high{15.0, 5.0, 5.0, 5.0};
    EXPECT_GT(map.entryTemp(3, high, Celsius(18.0)).value(),
              map.entryTemp(3, low, Celsius(18.0)).value());
}

TEST(CouplingMap, AmbientIncludesSelfTerm)
{
    CouplingParams params;
    CouplingMap map(chainSites(2, 1.6, 12.7), params);
    const std::vector<double> powers{0.0, 10.0};
    EXPECT_NEAR(map.ambientTemp(1, powers, Celsius(18.0)).value() -
                    map.ambientEntryTemp(1, powers, Celsius(18.0)).value(),
                params.kappaLocal * 10.0, 1e-9);
}

TEST(CouplingMap, WakeScalesAmbientCoupling)
{
    CouplingParams params;
    params.wakeFactor = 2.0;
    CouplingMap map(chainSites(2, 1.6, 12.7), params);
    EXPECT_NEAR(map.coeff(0, 1).value(), 2.0 * map.airCoeff(0, 1).value(), 1e-12);
}

TEST(CouplingMap, DownstreamImpactDecreasesAlongDuct)
{
    // MinHR's offline map: upstream sockets have the largest total
    // downstream impact; the last socket has none.
    CouplingMap map(chainSites(6, 1.6, 12.7), CouplingParams{});
    for (int i = 0; i + 1 < 6; ++i)
        EXPECT_GT(map.downstreamImpact(i).value(), map.downstreamImpact(i + 1).value());
    EXPECT_DOUBLE_EQ(map.downstreamImpact(5).value(), 0.0);
}

TEST(CouplingMap, VectorAndScalarEntryAgree)
{
    CouplingMap map(chainSites(5, 2.0, 12.7), CouplingParams{});
    const std::vector<double> powers{3.0, 7.0, 1.0, 9.0, 2.0};
    const auto vec = map.entryTemps(powers, Celsius(20.0));
    const auto amb_vec = map.ambientTemps(powers, Celsius(20.0));
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_NEAR(vec[i], map.entryTemp(i, powers, Celsius(20.0)).value(), 1e-12);
        EXPECT_NEAR(amb_vec[i], map.ambientTemp(i, powers, Celsius(20.0)).value(),
                    1e-12);
    }
}

TEST(CouplingMap, VerticalLeakReachesNeighbourRows)
{
    std::vector<SocketSite> sites{
        {0.0, 0, Cfm(12.7)}, {5.0, 0, Cfm(12.7)}, {5.0, 1, Cfm(12.7)}, {5.0, 3, Cfm(12.7)}};
    CouplingParams params;
    params.verticalLeak = 0.5;
    CouplingMap map(sites, params);
    EXPECT_GT(map.coeff(0, 1).value(), map.coeff(0, 2).value()); // same row strongest
    EXPECT_GT(map.coeff(0, 2).value(), 0.0);             // neighbour row leaks
    // Three rows away with leak 0.5: 0.125 < 0.05 cutoff... 0.125 is
    // above the 5% cutoff, so it is present but weaker still.
    EXPECT_GT(map.coeff(0, 2).value(), map.coeff(0, 3).value());
}

TEST(CouplingMap, VerticalLeakConservesTotalHeat)
{
    // Total downstream impact of a socket should be (nearly)
    // independent of the vertical leak setting, because leaking to
    // neighbour rows comes out of the same-duct share.
    std::vector<SocketSite> sites;
    for (int row = 0; row < 7; ++row)
        for (int k = 0; k < 2; ++k)
            sites.push_back(SocketSite{k * 5.0, row, Cfm(12.7)});
    CouplingParams none;
    none.verticalLeak = 0.0;
    CouplingParams leaky;
    leaky.verticalLeak = 0.45;
    CouplingMap a(sites, none), b(sites, leaky);
    // Socket 8 = row 4 upstream position (interior row).
    const std::size_t upstream = 8;
    EXPECT_NEAR(a.downstreamImpact(upstream).value(),
                b.downstreamImpact(upstream).value(),
                0.10 * a.downstreamImpact(upstream).value());
}

TEST(CouplingMap, MixFactorBelowOneIsFatal)
{
    CouplingParams params;
    params.mixFactor = 0.5;
    EXPECT_EXIT(CouplingMap(chainSites(2, 1.6, 12.7), params),
                ::testing::ExitedWithCode(1), "mixFactor");
}

// ------------------------------------------------------------ entry model

TEST(EntryModel, SingleSocketSeesInlet)
{
    const auto r = serialChainEntryTemps(1, Watts(15.0), Cfm(6.0), Celsius(18.0));
    EXPECT_EQ(r.entryTemps.size(), 1u);
    EXPECT_DOUBLE_EQ(r.entryTemps[0].value(), 18.0);
    EXPECT_DOUBLE_EQ(r.meanRise.value(), 0.0);
    EXPECT_DOUBLE_EQ(r.cov, 0.0);
}

TEST(EntryModel, MeanRiseClosedForm)
{
    // Mean rise = step * (N-1) / 2 with step = 1.76 * P / CFM.
    const auto r = serialChainEntryTemps(5, Watts(15.0), Cfm(6.0), Celsius(18.0));
    const double step =
        airTemperatureRise(Watts(15.0), Cfm(6.0)).value();
    EXPECT_NEAR(r.meanRise.value(), step * 2.0, 1e-9);
}

TEST(EntryModel, PaperExampleTenDegrees)
{
    // Sec. II-B: a 15 W part at 6 CFM shows ~10 C higher mean entry
    // temperature at degree of coupling 5 versus 1.
    const auto doc5 = serialChainEntryTemps(5, Watts(15.0), Cfm(6.0), Celsius(18.0));
    const auto doc1 = serialChainEntryTemps(1, Watts(15.0), Cfm(6.0), Celsius(18.0));
    EXPECT_NEAR(doc5.mean.value() - doc1.mean.value(), 10.0, 1.5);
}

TEST(EntryModel, MeanRiseGrowsWithCoupling)
{
    double last = -1.0;
    for (int doc : {1, 2, 3, 5, 11}) {
        const auto r = serialChainEntryTemps(doc, Watts(15.0), Cfm(6.0), Celsius(18.0));
        EXPECT_GT(r.meanRise.value(), last);
        last = r.meanRise.value();
    }
}

TEST(EntryModel, CovGrowsWithCoupling)
{
    // Fig. 5(b): inter-socket variation increases with the degree of
    // coupling.
    double last = -1.0;
    for (int doc : {1, 2, 3, 5, 11}) {
        const auto r = serialChainEntryTemps(doc, Watts(15.0), Cfm(6.0), Celsius(18.0));
        EXPECT_GT(r.cov, last - 1e-12);
        last = r.cov;
    }
}

TEST(EntryModel, CovGrowsWithPower)
{
    const auto lo = serialChainEntryTemps(5, Watts(5.0), Cfm(6.0), Celsius(18.0));
    const auto hi = serialChainEntryTemps(5, Watts(50.0), Cfm(6.0), Celsius(18.0));
    EXPECT_GT(hi.cov, lo.cov);
}

TEST(EntryModel, MoreAirflowLowersRise)
{
    const auto lo = serialChainEntryTemps(5, Watts(15.0), Cfm(2.0), Celsius(18.0));
    const auto hi = serialChainEntryTemps(5, Watts(15.0), Cfm(12.0), Celsius(18.0));
    EXPECT_GT(lo.meanRise.value(), hi.meanRise.value());
}

// ---------------------------------------- incremental/cached hot paths

TEST(CouplingMap, ApplyPowerDeltaMatchesFreshField)
{
    // Differential test of the incremental field update: a long
    // randomized sequence of per-socket power changes, folded into
    // the field one delta at a time, must track a from-scratch
    // ambientTemps() evaluation of the current power vector.
    const int n = 12;
    CouplingMap map(chainSites(n, 1.6, 12.7), CouplingParams{});
    std::vector<double> powers(n, 13.6);
    std::vector<double> temps = map.ambientTemps(powers, Celsius(18.0));

    std::uint64_t lcg = 12345;
    auto next_u = [&lcg]() {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return lcg >> 33;
    };
    for (int step = 0; step < 500; ++step) {
        const auto s = static_cast<std::size_t>(next_u() % n);
        const double new_p =
            2.2 + static_cast<double>(next_u() % 1000) * 0.0134;
        map.applyPowerDelta(temps, s, powers[s], new_p);
        powers[s] = new_p;
    }
    const std::vector<double> fresh = map.ambientTemps(powers, Celsius(18.0));
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(temps[i], fresh[i], 1e-9) << "socket " << i;
}

TEST(CouplingMap, ApplyPowerDeltaZeroIsIdentity)
{
    const int n = 4;
    CouplingMap map(chainSites(n, 1.6, 12.7), CouplingParams{});
    const std::vector<double> powers(n, 10.0);
    std::vector<double> temps = map.ambientTemps(powers, Celsius(18.0));
    const std::vector<double> before = temps;
    map.applyPowerDelta(temps, 1, 10.0, 10.0);
    for (int i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(temps[i], before[i]);
}

TEST(CouplingMap, DeltaFanoutPrunesNegligibleCoefficients)
{
    // With an absurd duct flow every coupling coefficient falls
    // below kDeltaCoeffTolerance, so the filtered delta CSR prunes
    // the whole downstream fan-out while the full CSR (used by the
    // from-scratch evaluations) keeps it.
    CouplingMap huge(chainSites(8, 1.6, 1.27e7), CouplingParams{});
    EXPECT_GT(huge.downstreamCount(0), 0u);
    EXPECT_EQ(huge.deltaFanoutCount(0), 0u);

    // At the calibration flow nothing is negligible: the delta CSR
    // is the downstream CSR and applyPowerDelta visits every row it
    // always did.
    CouplingMap normal(chainSites(8, 1.6, 12.7), CouplingParams{});
    for (std::size_t s = 0; s < 8; ++s)
        EXPECT_EQ(normal.deltaFanoutCount(s),
                  normal.downstreamCount(s))
            << "socket " << s;
}

TEST(CouplingMap, PrunedDeltaStaysWithinCoefficientToleranceBound)
{
    // When pruning does fire, the incremental field may drift from a
    // fresh evaluation by at most kDeltaCoeffTolerance per watt of
    // accumulated power delta — the same bound the paranoid drift
    // check enforces per epoch on unpruned maps.
    const int n = 8;
    CouplingMap map(chainSites(n, 1.6, 1.27e7), CouplingParams{});
    std::vector<double> powers(n, 13.6);
    std::vector<double> temps =
        map.ambientTemps(powers, Celsius(18.0));
    double movedW = 0.0;
    for (int step = 0; step < 64; ++step) {
        const auto s = static_cast<std::size_t>(step % n);
        const double target = step % 2 == 0 ? 2.2 : 13.6;
        movedW += std::abs(target - powers[s]);
        map.applyPowerDelta(temps, s, powers[s], target);
        powers[s] = target;
    }
    const std::vector<double> fresh =
        map.ambientTemps(powers, Celsius(18.0));
    const double bound =
        CouplingMap::kDeltaCoeffTolerance * movedW + 1e-12;
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(temps[i], fresh[i], bound) << "socket " << i;
}

RCNetwork
ladderNetwork()
{
    RCNetwork net;
    std::vector<NodeId> nodes;
    for (int i = 0; i < 10; ++i) {
        std::string name("n");
        name += std::to_string(i);
        nodes.push_back(net.addNode(name, JoulePerKelvin(1.0)));
    }
    for (int i = 0; i + 1 < 10; ++i)
        net.connect(nodes[i], nodes[i + 1],
                    KelvinPerWatt(0.5 + 0.1 * i));
    net.connectAmbient(nodes[0], KelvinPerWatt(1.0));
    net.connectAmbient(nodes[9], KelvinPerWatt(2.0));
    return net;
}

TEST(RcNetwork, CachedSolveMatchesFreshNetwork)
{
    // Repeated solves reuse the factorization; every one of them must
    // match what a freshly built (unfactored) network produces for
    // the same right-hand side, and conserve energy.
    RCNetwork cached = ladderNetwork();
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<double> powers(10, 0.0);
        powers[trial % 10] = 3.0 + trial;
        powers[(3 * trial + 1) % 10] += 1.5;
        double injected = 0.0;
        for (double p : powers)
            injected += p;

        RCNetwork fresh = ladderNetwork();
        const auto want = fresh.steadyState(powers, Celsius(20.0));
        const auto got = cached.steadyState(powers, Celsius(20.0));
        ASSERT_EQ(want.size(), got.size());
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_NEAR(got[i], want[i], 1e-9);
        EXPECT_NEAR(cached.ambientHeatFlow(got, Celsius(20.0)).value(), injected, 1e-9);
    }
}

TEST(RcNetwork, FactorizationInvalidatedByStructuralChange)
{
    // Solving, then growing the network, must not reuse the stale
    // factorization: results after the change have to match a fresh
    // network with the same final structure.
    RCNetwork grown = ladderNetwork();
    const auto warmup = grown.steadyState(std::vector<double>(10, 1.0), Celsius(20.0));
    ASSERT_EQ(warmup.size(), 10u);

    const NodeId extra = grown.addNode("extra", JoulePerKelvin(1.0));
    grown.connect(0, extra, KelvinPerWatt(0.8));
    grown.connectAmbient(extra, KelvinPerWatt(1.7));

    RCNetwork fresh = ladderNetwork();
    const NodeId fresh_extra = fresh.addNode("extra", JoulePerKelvin(1.0));
    fresh.connect(0, fresh_extra, KelvinPerWatt(0.8));
    fresh.connectAmbient(fresh_extra, KelvinPerWatt(1.7));

    std::vector<double> powers(11, 0.0);
    powers[4] = 6.0;
    powers[extra] = 2.0;
    const auto want = fresh.steadyState(powers, Celsius(18.0));
    const auto got = grown.steadyState(powers, Celsius(18.0));
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_NEAR(got[i], want[i], 1e-9);
}

TEST(RcNetwork, StableStepCacheInvalidated)
{
    RCNetwork net;
    const NodeId a = net.addNode("a", JoulePerKelvin(1.0));
    net.connectAmbient(a, KelvinPerWatt(1.0));
    const double before = net.stableStep().value();
    EXPECT_DOUBLE_EQ(net.stableStep().value(), before); // Cached.

    // A second path to ambient halves the RC product at node a; the
    // cached step must be recomputed, not reused.
    net.connectAmbient(a, KelvinPerWatt(1.0));
    EXPECT_LT(net.stableStep().value(), before);
}

} // namespace
} // namespace densim
