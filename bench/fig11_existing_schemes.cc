/**
 * @file
 * Figure 11 — average runtime expansion versus CF for the existing
 * thermal-aware schemes at 30% and 70% load, Computation workload
 * (lower is better; the paper plots expansion, this bench prints both
 * expansion and the equivalent relative performance).
 *
 * Paper shapes: at 30% load most schemes are at or worse than CF,
 * with HF and MinHR clearly the worst and Predictive the only scheme
 * ahead. At the higher load the ordering inverts: HF and MinHR become
 * the best schemes while Predictive loses its advantage. densim's
 * crossover sits slightly higher on the load axis (see
 * EXPERIMENTS.md), so the high-load column here uses 80% where the
 * inversion is fully developed.
 */

#include <iostream>

#include "bench_common.hh"
#include "sched/factory.hh"
#include "util/table.hh"

using namespace densim;
using namespace densim::bench;

int
main()
{
    std::cout << "=== Figure 11: existing schemes vs CF, Computation "
                 "===\n\n";

    const std::vector<double> loads{0.3, 0.7, 0.8};
    const auto grid = runAveragedGrid(existingSchedulerNames(),
                                      WorkloadSet::Computation, loads,
                                      "CF");

    TableWriter table({"Scheme", "Expansion@30%", "Expansion@70%",
                       "Expansion@80%"});
    for (const std::string &scheme : existingSchedulerNames()) {
        table.newRow().cell(scheme);
        for (double load : loads)
            table.cell(1.0 / grid.at(scheme).at(load).perfVsBaseline,
                       3);
    }
    table.print(std::cout);

    std::cout << "\n(Expansion > 1 means slower than CF; paper: HF/"
                 "MinHR ~1.04-1.05 at 30%, best at high load; "
                 "Predictive best at 30%, no advantage at high "
                 "load)\n";
    return 0;
}
