# Empty dependencies file for densim_util.
# This may be replaced when dependencies are built.
