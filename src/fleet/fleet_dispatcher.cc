#include "fleet/fleet_dispatcher.hh"

#include <limits>

#include "util/logging.hh"

namespace densim {

namespace {

/**
 * The summary with the given shard id. Dispatchers address shards by
 * id, never by vector position, which is what makes every policy
 * below invariant to summary order.
 */
const ShardSummary &
byId(const std::vector<ShardSummary> &summaries, std::size_t shard)
{
    for (const auto &summary : summaries)
        if (summary.shard == shard)
            return summary;
    panic("FleetDispatcher: no summary for shard ", shard);
}

/**
 * Headroom preference order: prefer a shard with an idle socket;
 * among those, the most thermal headroom; when nothing is idle, the
 * smallest backlog; always tie-break on the lower shard id so the
 * choice is total.
 */
bool
headroomBetter(const ShardSummary &a, const ShardSummary &b)
{
    const bool aIdle = a.idleSockets > 0;
    const bool bIdle = b.idleSockets > 0;
    if (aIdle != bIdle)
        return aIdle;
    if (aIdle) {
        if (a.headroomC != b.headroomC)
            return a.headroomC > b.headroomC;
    } else if (a.backlog != b.backlog) {
        return a.backlog < b.backlog;
    }
    return a.shard < b.shard;
}

const ShardSummary &
bestByHeadroom(const std::vector<ShardSummary> &summaries)
{
    const ShardSummary *best = &summaries.front();
    for (const auto &summary : summaries)
        if (headroomBetter(summary, *best))
            best = &summary;
    return *best;
}

class RoundRobinDispatcher final : public FleetDispatcher
{
  public:
    const char *name() const override { return "roundrobin"; }

    std::size_t
    pick(const Job &, const std::vector<ShardSummary> &summaries)
        override
    {
        const std::size_t target = next_ % summaries.size();
        ++next_;
        return byId(summaries, target).shard;
    }

    std::uint64_t cursor() const override { return next_; }

    void
    setCursor(std::uint64_t cursor) override
    {
        next_ = static_cast<std::size_t>(cursor);
    }

  private:
    std::size_t next_ = 0;
};

class HeadroomDispatcher final : public FleetDispatcher
{
  public:
    const char *name() const override { return "headroom"; }

    std::size_t
    pick(const Job &, const std::vector<ShardSummary> &summaries)
        override
    {
        return bestByHeadroom(summaries).shard;
    }
};

class LocalityDispatcher final : public FleetDispatcher
{
  public:
    const char *name() const override { return "locality"; }

    std::size_t
    pick(const Job &, const std::vector<ShardSummary> &summaries)
        override
    {
        if (sticky_ < summaries.size()) {
            const ShardSummary &last = byId(summaries, sticky_);
            if (last.idleSockets > 0)
                return last.shard;
        }
        sticky_ = bestByHeadroom(summaries).shard;
        return sticky_;
    }

    std::uint64_t cursor() const override { return sticky_; }

    void
    setCursor(std::uint64_t cursor) override
    {
        sticky_ = static_cast<std::size_t>(cursor);
    }

  private:
    std::size_t sticky_ = std::numeric_limits<std::size_t>::max();
};

class PowerDispatcher final : public FleetDispatcher
{
  public:
    explicit PowerDispatcher(double budgetW) : budgetW_(budgetW) {}

    const char *name() const override { return "power"; }

    std::size_t
    pick(const Job &, const std::vector<ShardSummary> &summaries)
        override
    {
        const double share =
            budgetW_ > 0.0
                ? budgetW_ / static_cast<double>(summaries.size())
                : std::numeric_limits<double>::infinity();
        const ShardSummary *best = nullptr;
        const ShardSummary *bestOver = nullptr;
        for (const auto &summary : summaries) {
            auto &slot = summary.powerW < share ? best : bestOver;
            if (slot == nullptr || powerBetter(summary, *slot))
                slot = &summary;
        }
        // Every shard over budget: least-loaded shard anyway — the
        // budget shapes routing, it never drops work.
        return (best != nullptr ? best : bestOver)->shard;
    }

  private:
    static bool
    powerBetter(const ShardSummary &a, const ShardSummary &b)
    {
        if (a.powerW != b.powerW)
            return a.powerW < b.powerW;
        return a.shard < b.shard;
    }

    double budgetW_;
};

} // namespace

std::unique_ptr<FleetDispatcher>
makeFleetDispatcher(const FleetConfig &config)
{
    if (config.dispatcher == "roundrobin")
        return std::make_unique<RoundRobinDispatcher>();
    if (config.dispatcher == "headroom")
        return std::make_unique<HeadroomDispatcher>();
    if (config.dispatcher == "locality")
        return std::make_unique<LocalityDispatcher>();
    if (config.dispatcher == "power")
        return std::make_unique<PowerDispatcher>(config.powerBudgetW);
    fatal("makeFleetDispatcher: unknown dispatcher '",
          config.dispatcher, "' (FleetConfig::validate missed it?)");
}

} // namespace densim
