file(REMOVE_RECURSE
  "CMakeFiles/fig03_coupled_vs_uncoupled.dir/fig03_coupled_vs_uncoupled.cc.o"
  "CMakeFiles/fig03_coupled_vs_uncoupled.dir/fig03_coupled_vs_uncoupled.cc.o.d"
  "fig03_coupled_vs_uncoupled"
  "fig03_coupled_vs_uncoupled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_coupled_vs_uncoupled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
