# Empty compiler generated dependencies file for densim_thermal.
# This may be replaced when dependencies are built.
