#include "power/power_manager.hh"

#include "util/logging.hh"

namespace densim {

PowerManager::PowerManager(const PStateTable &pstate_table,
                           SimplePeakModel peak_model, double t_limit_c,
                           double gated_frac_tdp)
    : table_(pstate_table), peak_(peak_model), tLimitC_(t_limit_c),
      gatedFracTdp_(gated_frac_tdp)
{
    if (tLimitC_ <= 0.0)
        fatal("PowerManager: temperature limit must be positive, got ",
              tLimitC_);
    if (gatedFracTdp_ < 0.0 || gatedFracTdp_ > 1.0)
        fatal("PowerManager: gated power fraction ", gatedFracTdp_,
              " outside [0, 1]");
}

void
PowerManager::checkCurve(const FreqCurve &curve) const
{
    if (curve.totalPowerAt90C.size() != table_.size() ||
        curve.perfRel.size() != table_.size()) {
        panic("FreqCurve has ", curve.totalPowerAt90C.size(), "/",
              curve.perfRel.size(), " entries for ", table_.size(),
              " P-states");
    }
}

double
PowerManager::dynamicPower(const FreqCurve &curve,
                           const LeakageModel &leak, std::size_t i) const
{
    checkCurve(curve);
    if (i >= table_.size())
        panic("P-state index ", i, " out of range");
    const double dyn =
        curve.totalPowerAt90C[i] - leak.at(leak.refTemperature());
    if (dyn < 0.0)
        fatal("FreqCurve power at state ", i, " (",
              curve.totalPowerAt90C[i],
              " W) is below reference leakage (",
              leak.at(leak.refTemperature()), " W)");
    return dyn;
}

double
PowerManager::totalPower(const FreqCurve &curve, const LeakageModel &leak,
                         std::size_t i, double chip_c) const
{
    return dynamicPower(curve, leak, i) + leak.at(chip_c);
}

DvfsDecision
PowerManager::chooseAtAmbient(const FreqCurve &curve,
                              const LeakageModel &leak, double ambient_c,
                              const HeatSink &sink) const
{
    return chooseAtAmbientCapped(curve, leak, ambient_c, sink,
                                 table_.size() - 1);
}

DvfsDecision
PowerManager::chooseAtAmbientCapped(const FreqCurve &curve,
                                    const LeakageModel &leak,
                                    double ambient_c,
                                    const HeatSink &sink,
                                    std::size_t max_pstate) const
{
    checkCurve(curve);
    if (max_pstate >= table_.size())
        panic("chooseAtAmbientCapped: max P-state ", max_pstate,
              " out of range");
    DvfsDecision decision{};
    for (std::size_t idx = max_pstate + 1; idx-- > 0;) {
        // Two-pass leakage compensation: estimate the peak at the
        // 90 C-characterized power, correct leakage for the estimated
        // temperature, and re-estimate.
        const double p90 = curve.totalPowerAt90C[idx];
        const double t1 = peak_.peak(ambient_c, p90, sink);
        const double p2 = dynamicPower(curve, leak, idx) + leak.at(t1);
        const double t2 = peak_.peak(ambient_c, p2, sink);
        if (t2 <= tLimitC_ || idx == 0) {
            decision.pstate = idx;
            decision.freqMhz = table_.at(idx).freqMhz;
            decision.powerW = p2;
            decision.predictedPeakC = t2;
            decision.feasible = t2 <= tLimitC_;
            return decision;
        }
    }
    panic("unreachable: P-state loop fell through");
}

DvfsDecision
PowerManager::chooseSteady(const FreqCurve &curve,
                           const LeakageModel &leak, double entry_c,
                           double kappa_local,
                           const HeatSink &sink) const
{
    checkCurve(curve);
    DvfsDecision decision{};
    for (std::size_t idx = table_.size(); idx-- > 0;) {
        const double p90 = curve.totalPowerAt90C[idx];
        // First pass: ambient from the 90 C-characterized power.
        const double t1 =
            peak_.peak(entry_c + kappa_local * p90, p90, sink);
        // Second pass: leakage-corrected power, self-consistent
        // ambient.
        const double p2 = dynamicPower(curve, leak, idx) + leak.at(t1);
        const double t2 =
            peak_.peak(entry_c + kappa_local * p2, p2, sink);
        if (t2 <= tLimitC_ || idx == 0) {
            decision.pstate = idx;
            decision.freqMhz = table_.at(idx).freqMhz;
            decision.powerW = p2;
            decision.predictedPeakC = t2;
            decision.feasible = t2 <= tLimitC_;
            return decision;
        }
    }
    panic("unreachable: P-state loop fell through");
}

DvfsDecision
PowerManager::chooseWithSinkState(const FreqCurve &curve,
                                  const LeakageModel &leak,
                                  double ambient_c, double sink_rise_c,
                                  const HeatSink &sink) const
{
    checkCurve(curve);
    const double base = ambient_c + sink_rise_c;
    auto instant_peak = [&](double p) {
        return base + p * peak_.rInt() + sink.theta(p);
    };
    DvfsDecision decision{};
    for (std::size_t idx = table_.size(); idx-- > 0;) {
        const double p90 = curve.totalPowerAt90C[idx];
        const double t1 = instant_peak(p90);
        const double p2 = dynamicPower(curve, leak, idx) + leak.at(t1);
        const double t2 = instant_peak(p2);
        if (t2 <= tLimitC_ || idx == 0) {
            decision.pstate = idx;
            decision.freqMhz = table_.at(idx).freqMhz;
            decision.powerW = p2;
            decision.predictedPeakC = t2;
            decision.feasible = t2 <= tLimitC_;
            return decision;
        }
    }
    panic("unreachable: P-state loop fell through");
}

DvfsDecision
PowerManager::chooseResponsive(const FreqCurve &curve,
                               const LeakageModel &leak, double entry_c,
                               double kappa_local, double sink_rise_c,
                               const HeatSink &sink) const
{
    checkCurve(curve);
    const double base = entry_c + sink_rise_c;
    auto instant_peak = [&](double p) {
        return base + kappa_local * p + p * peak_.rInt() +
               sink.theta(p);
    };
    DvfsDecision decision{};
    for (std::size_t idx = table_.size(); idx-- > 0;) {
        const double p90 = curve.totalPowerAt90C[idx];
        const double t1 = instant_peak(p90);
        const double p2 = dynamicPower(curve, leak, idx) + leak.at(t1);
        const double t2 = instant_peak(p2);
        if (t2 <= tLimitC_ || idx == 0) {
            decision.pstate = idx;
            decision.freqMhz = table_.at(idx).freqMhz;
            decision.powerW = p2;
            decision.predictedPeakC = t2;
            decision.feasible = t2 <= tLimitC_;
            return decision;
        }
    }
    panic("unreachable: P-state loop fell through");
}

double
PowerManager::gatedPower(const LeakageModel &leak) const
{
    return gatedFracTdp_ * leak.tdp();
}

} // namespace densim
