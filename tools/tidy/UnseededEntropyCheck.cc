#include "UnseededEntropyCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace densim::tidy {

void
UnseededEntropyCheck::registerMatchers(MatchFinder *finder)
{
    finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::rand", "::srand", "::time", "::clock",
                     "::gettimeofday", "::timespec_get", "::std::rand",
                     "::std::srand", "::std::time", "::std::clock"))))
            .bind("entropy-call"),
        this);
    finder->addMatcher(
        callExpr(callee(cxxMethodDecl(
                     hasName("now"),
                     ofClass(matchesName("_clock$")))))
            .bind("clock-now"),
        this);
    finder->addMatcher(
        valueDecl(hasType(qualType(hasDeclaration(namedDecl(hasAnyName(
                      "::std::random_device", "::std::mt19937",
                      "::std::mt19937_64", "::std::minstd_rand",
                      "::std::minstd_rand0", "::std::knuth_b"))))))
            .bind("std-engine"),
        this);
    finder->addMatcher(
        valueDecl(hasType(qualType(hasDeclaration(classTemplateSpecializationDecl(
                      hasAnyName("::std::map", "::std::set",
                                 "::std::multimap", "::std::multiset"),
                      hasTemplateArgument(
                          0, refersToType(pointerType())))))))
            .bind("ptr-key"),
        this);
}

void
UnseededEntropyCheck::check(const MatchFinder::MatchResult &result)
{
    if (const auto *call =
            result.Nodes.getNodeAs<CallExpr>("entropy-call")) {
        diag(call->getExprLoc(),
             "call draws wall-clock/ambient entropy; use a seeded "
             "densim::Rng stream or simulated time");
        return;
    }
    if (const auto *call =
            result.Nodes.getNodeAs<CallExpr>("clock-now")) {
        diag(call->getExprLoc(),
             "std::chrono clock ::now() reads the wall clock inside "
             "engine code; simulation time must come from the event "
             "loop");
        return;
    }
    if (const auto *decl =
            result.Nodes.getNodeAs<ValueDecl>("std-engine")) {
        diag(decl->getLocation(),
             "std entropy source %0 is banned in engine code; all "
             "randomness flows through explicitly seeded densim::Rng "
             "streams")
            << decl->getType();
        return;
    }
    if (const auto *decl =
            result.Nodes.getNodeAs<ValueDecl>("ptr-key")) {
        diag(decl->getLocation(),
             "pointer key in an ordered container (%0): address order "
             "is allocation (ASLR) entropy and varies run to run; key "
             "on a stable id instead")
            << decl->getType();
    }
}

} // namespace densim::tidy
