/**
 * @file
 * Balanced Locations (Balanced-L) [55] (Sec. IV-A): assign work to
 * the locations expected to be coolest purely by position — for a
 * dense server, the sockets closest to the air inlets. Ties (one
 * zone spans many rows) break randomly to spread load across rows.
 */

#ifndef DENSIM_SCHED_BALANCED_LOCATIONS_HH
#define DENSIM_SCHED_BALANCED_LOCATIONS_HH

#include "sched/scheduler.hh"

namespace densim {

/** Location-based (inlet-first) policy. */
class BalancedLocations : public Scheduler
{
  public:
    const char *name() const override { return "Balanced-L"; }
    DENSIM_ALLOCATES(
        "per-row occupancy scratch resized to topology size on first "
        "use; no steady-state growth")
    std::size_t pick(const Job &job, const SchedContext &ctx) override;

  private:
    std::vector<double> pos_; //!< Cached stream positions.
    const ServerTopology *cachedFor_ = nullptr;
};

} // namespace densim

#endif // DENSIM_SCHED_BALANCED_LOCATIONS_HH
