#include "fleet/fleet_config.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace densim {

namespace {

/**
 * Stream tag separating the fleet seed domain from every engine
 * stream; see fleet/fleet_sim.hh for the per-stream tags layered on
 * top of this root.
 */
constexpr std::uint64_t kFleetDomainTag = 0xf1ee7d0a111u;

} // namespace

std::uint64_t
FleetConfig::effectiveSeed(std::uint64_t runSeed) const
{
    // A pinned fleet seed still passes through domainSeed so the
    // value handed to shards is never the raw user seed (which also
    // seeds the engine's own streams via xor-constants).
    return domainSeed(seed != 0 ? seed : runSeed, 0, kFleetDomainTag);
}

void
FleetConfig::validate(double pmEpochS) const
{
    if (!enabled())
        return;
    if (chassis > 4096)
        fatal("FleetConfig: fleet.chassis ", chassis,
              " exceeds the 4096-shard cap");
    if (!(epochS > 0.0))
        fatal("FleetConfig: fleet.epochS ", epochS,
              " must be positive");
    if (!(pmEpochS > 0.0))
        fatal("FleetConfig: pmEpochS ", pmEpochS, " must be positive");
    const double ratio = epochS / pmEpochS;
    const double rounded = std::round(ratio);
    if (rounded < 1.0 || std::abs(ratio - rounded) > 1e-9 * rounded)
        fatal("FleetConfig: fleet.epochS ", epochS,
              " is not an integral multiple of pmEpochS ", pmEpochS,
              " (shards must take a whole number of pm epochs per "
              "exchange window)");
    if (powerBudgetW < 0.0)
        fatal("FleetConfig: fleet.powerBudgetW ", powerBudgetW,
              " must be >= 0 (0 = unlimited)");
    const auto &known = knownFleetDispatchers();
    if (std::find(known.begin(), known.end(), dispatcher) ==
        known.end()) {
        std::string names;
        for (const auto &name : known) {
            if (!names.empty())
                names += ", ";
            names += name;
        }
        fatal("FleetConfig: unknown fleet.dispatcher '", dispatcher,
              "' (known: ", names, ")");
    }
}

const std::vector<std::string> &
knownFleetDispatchers()
{
    static const std::vector<std::string> names = {
        "roundrobin",
        "headroom",
        "locality",
        "power",
    };
    return names;
}

} // namespace densim
