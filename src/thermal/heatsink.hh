/**
 * @file
 * Heat sink models.
 *
 * The M700-class cartridge mitigates inter-socket coupling with two
 * distinct sinks: upstream sockets get an 18-fin sink, downstream
 * sockets a better 30-fin sink (Sec. II). A HeatSink carries the
 * external thermal resistance R_ext and the empirical theta(P)
 * correction of Eq. (1), with the exact Table III constants as
 * presets.
 *
 * A parametric fin-geometry model (finHeatsinkResistance) derives
 * R_ext from first principles — developing laminar channel flow
 * between fins, fin efficiency, and spreading resistance — and is used
 * by tests to show the Table III presets are physically consistent
 * with the stated 6.35 CFM per-socket airflow.
 */

#ifndef DENSIM_THERMAL_HEATSINK_HH
#define DENSIM_THERMAL_HEATSINK_HH

#include <string>

#include "core/units.hh"

namespace densim {

/**
 * Coefficients of the empirical linear correction theta(P) = c0 + c1*P
 * of Eq. (1) (Table III lists c1 as negative).
 */
struct ThetaCoeffs
{
    CelsiusDelta c0;  //!< Constant term.
    KelvinPerWatt c1; //!< Slope (negative in Table III).

    /** Evaluate theta at @p power. */
    CelsiusDelta operator()(Watts power) const { return c0 + c1 * power; }
};

/** A finned forced-air heat sink as seen by the peak-temperature model. */
struct HeatSink
{
    std::string name;   //!< Human-readable identifier.
    int finCount;       //!< Number of fins.
    KelvinPerWatt rExt; //!< External (sink) thermal resistance.
    ThetaCoeffs theta;  //!< Empirical Eq. (1) correction for this sink.

    /** Upstream 18-fin sink: R_ext 1.578 C/W, theta = 4.41 - 0.0896 P. */
    static const HeatSink &fin18();

    /** Downstream 30-fin sink: R_ext 1.056 C/W, theta = 4.45 - 0.0916 P. */
    static const HeatSink &fin30();
};

/** Parametric geometry for the first-principles fin model. */
struct FinHeatsinkGeometry
{
    double baseWidthM = 0.040;     //!< Across the airflow.
    double baseLengthM = 0.040;    //!< Along the airflow.
    double baseThicknessM = 0.003; //!< Base plate thickness.
    int finCount = 18;             //!< Fins across baseWidth.
    double finHeightM = 0.012;     //!< Fin height above base.
    double finThicknessM = 0.0005; //!< Individual fin thickness.
    double conductivityWmK = 200.; //!< Aluminum alloy.
    double dieAreaM2 = 100e-6;     //!< Heat source area (X2150 ~100mm^2).
    double timResistance = 0.30;   //!< Interface resistance, C/W.
};

/**
 * External thermal resistance of a fin heatsink receiving @p flow of
 * airflow: spreading + base conduction + TIM + convection from fin
 * surfaces with fin-efficiency and entrance-corrected laminar Nusselt
 * number.
 */
KelvinPerWatt finHeatsinkResistance(const FinHeatsinkGeometry &geom,
                                    Cfm flow);

/**
 * Mean air velocity (m/s) in the fin channels for @p flow airflow —
 * exposed for tests and the geometry bench.
 */
double finChannelVelocity(const FinHeatsinkGeometry &geom, Cfm flow);

} // namespace densim

#endif // DENSIM_THERMAL_HEATSINK_HH
