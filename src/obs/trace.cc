#include "obs/trace.hh"

#include <fstream>

#include "obs/json.hh"
#include "util/fs.hh"
#include "util/logging.hh"

namespace densim::obs {

bool
TraceSink::admit()
{
    if (!enabled_)
        return false;
    if (events_.size() >= eventCap_) {
        ++dropped_;
        return false;
    }
    return true;
}

void
TraceSink::addComplete(const std::string &name, const std::string &cat,
                       double ts_us, double dur_us, int tid)
{
    if (!admit())
        return;
    events_.push_back(
        {Kind::Complete, tid, ts_us, dur_us, 0.0, name, cat});
}

void
TraceSink::addCounter(const std::string &name, double ts_us,
                      double value)
{
    if (!admit())
        return;
    events_.push_back(
        {Kind::CounterSample, 0, ts_us, 0.0, value, name, ""});
}

void
TraceSink::clear()
{
    events_.clear();
    dropped_ = 0;
}

std::string
TraceSink::toJson() const
{
    std::string out;
    out.reserve(128 + events_.size() * 96);
    out += "{\"traceEvents\":[";

    // Process-name metadata event first, so the viewer labels the row.
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":0,"
           "\"name\":\"process_name\",\"args\":{\"name\":";
    json::appendString(out, processName_);
    out += "}}";

    for (const Event &e : events_) {
        out += ",{\"ph\":\"";
        out += e.kind == Kind::Complete ? 'X' : 'C';
        out += "\",\"pid\":0,\"tid\":";
        out += std::to_string(e.tid);
        out += ",\"ts\":";
        json::appendNumber(out, e.tsUs);
        out += ",\"name\":";
        json::appendString(out, e.name);
        if (e.kind == Kind::Complete) {
            out += ",\"dur\":";
            json::appendNumber(out, e.durUs);
            if (!e.cat.empty()) {
                out += ",\"cat\":";
                json::appendString(out, e.cat);
            }
        } else {
            out += ",\"args\":{\"value\":";
            json::appendNumber(out, e.value);
            out += "}";
        }
        out += "}";
    }
    out += "],\"displayTimeUnit\":\"ms\"";
    if (dropped_ > 0) {
        out += ",\"metadata\":{\"densimDroppedEvents\":";
        out += std::to_string(dropped_);
        out += "}";
    }
    out += "}";
    return out;
}

void
TraceSink::writeFile(const std::string &path) const
{
    // Atomic replace: chrome://tracing must never see a torn JSON.
    if (!atomicWriteFile(path, toJson() + "\n"))
        fatal("obs: cannot write trace file '", path, "'");
    if (dropped_ > 0) {
        warn("obs: trace '", path, "' dropped ", dropped_,
             " events past the ", eventCap_, "-event cap");
    }
}

std::string
perRunPath(const std::string &path, std::size_t run)
{
    const std::string tag = "-run" + std::to_string(run);
    const auto slash = path.find_last_of('/');
    const auto dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + tag;
    return path.substr(0, dot) + tag + path.substr(dot);
}

} // namespace densim::obs
