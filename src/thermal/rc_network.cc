#include "thermal/rc_network.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/invariant.hh"
#include "util/logging.hh"

namespace densim {

NodeId
RCNetwork::addNode(std::string node_name, JoulePerKelvin node_capacitance)
{
    if (node_capacitance.value() < 0.0)
        fatal("RCNetwork: negative capacitance for node '", node_name,
              "'");
    nodes_.push_back(Node{std::move(node_name), node_capacitance.value()});
    invalidateCaches();
    return nodes_.size() - 1;
}

void
RCNetwork::invalidateCaches()
{
    fact_.valid = false;
    stableStepS_ = -1.0;
}

void
RCNetwork::checkNode(NodeId a) const
{
    if (a >= nodes_.size())
        panic("RCNetwork: node id ", a, " out of range (", nodes_.size(),
              " nodes)");
}

void
RCNetwork::connect(NodeId a, NodeId b, KelvinPerWatt resistance)
{
    checkNode(a);
    checkNode(b);
    if (a == b)
        panic("RCNetwork: self-loop on node ", a);
    if (resistance.value() <= 0.0)
        fatal("RCNetwork: resistance must be positive, got ",
              resistance.value());
    edges_.push_back(Edge{a, b, 1.0 / resistance.value()});
    invalidateCaches();
}

void
RCNetwork::connectAmbient(NodeId a, KelvinPerWatt resistance)
{
    checkNode(a);
    if (resistance.value() <= 0.0)
        fatal("RCNetwork: ambient resistance must be positive, got ",
              resistance.value());
    nodes_[a].ambientConductance += 1.0 / resistance.value();
    invalidateCaches();
}

const std::string &
RCNetwork::name(NodeId a) const
{
    checkNode(a);
    return nodes_[a].name;
}

JoulePerKelvin
RCNetwork::capacitance(NodeId a) const
{
    checkNode(a);
    return JoulePerKelvin(nodes_[a].capacitance);
}

const RCNetwork::Factorization &
RCNetwork::factorization() const
{
    if (fact_.valid)
        return fact_;

    // Build the dense conductance matrix G.
    const std::size_t n = nodes_.size();
    std::vector<double> &g = fact_.lu;
    g.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        g[i * n + i] = nodes_[i].ambientConductance;
    for (const Edge &e : edges_) {
        g[e.a * n + e.a] += e.conductance;
        g[e.b * n + e.b] += e.conductance;
        g[e.a * n + e.b] -= e.conductance;
        g[e.b * n + e.a] -= e.conductance;
    }

    // Gaussian elimination with partial pivoting. The multiplier of
    // each eliminated entry is stored in its (otherwise dead) lower-
    // triangle slot, so a later solve can replay exactly the updates
    // the elimination would have applied to its right-hand side.
    std::vector<std::size_t> &perm = fact_.perm;
    perm.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        double best = std::fabs(g[perm[col] * n + col]);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double v = std::fabs(g[perm[r] * n + col]);
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-14)
            fatal("RCNetwork: singular conductance matrix — some node "
                  "has no path to the ambient");
        std::swap(perm[col], perm[pivot]);
        const std::size_t prow = perm[col];
        const double diag = g[prow * n + col];
        for (std::size_t r = col + 1; r < n; ++r) {
            const std::size_t row = perm[r];
            const double factor = g[row * n + col] / diag;
            if (factor != 0.0) {
                for (std::size_t c = col + 1; c < n; ++c)
                    g[row * n + c] -= factor * g[prow * n + c];
            }
            g[row * n + col] = factor;
        }
    }
    fact_.valid = true;
    return fact_;
}

std::vector<double>
RCNetwork::steadyState(const std::vector<double> &powers_w,
                       Celsius ambient) const
{
    const double t_ambient = ambient.value();
    const std::size_t n = nodes_.size();
    if (powers_w.size() != n)
        panic("RCNetwork::steadyState: ", powers_w.size(),
              " powers for ", n, " nodes");

    const Factorization &f = factorization();
    const std::vector<double> &lu = f.lu;
    const std::vector<std::size_t> &perm = f.perm;

    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i)
        rhs[i] = powers_w[i] + nodes_[i].ambientConductance * t_ambient;

    // Forward substitution: apply the stored multipliers in the order
    // the elimination produced them.
    for (std::size_t col = 0; col < n; ++col) {
        const std::size_t prow = perm[col];
        for (std::size_t r = col + 1; r < n; ++r) {
            const std::size_t row = perm[r];
            const double factor = lu[row * n + col];
            if (factor != 0.0)
                rhs[row] -= factor * rhs[prow];
        }
    }
    std::vector<double> temps(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        const std::size_t row = perm[ri];
        double acc = rhs[row];
        for (std::size_t c = ri + 1; c < n; ++c)
            acc -= lu[row * n + c] * temps[c];
        temps[ri] = acc / lu[row * n + ri];
    }

    // Undo the column ordering: unknowns were solved in column order,
    // which equals node order here (columns were never permuted).

#if DENSIM_ENABLE_PARANOID
    // Spot re-solve: check the solution against the network as it
    // exists *now* by recomputing each node's heat balance from the
    // live node/edge lists. A stale or corrupted factorization (a
    // mutation that failed to invalidate the cache) leaves a nonzero
    // nodal residual even though the substitution itself succeeded.
    double scale = 1.0;
    for (std::size_t i = 0; i < n; ++i)
        scale = std::max(scale, std::fabs(powers_w[i]));
    std::vector<double> residual(n);
    for (std::size_t i = 0; i < n; ++i) {
        residual[i] = powers_w[i] + nodes_[i].ambientConductance *
                                        (t_ambient - temps[i]);
    }
    for (const Edge &e : edges_) {
        const double q = e.conductance * (temps[e.b] - temps[e.a]);
        residual[e.a] += q;
        residual[e.b] -= q;
    }
    for (std::size_t i = 0; i < n; ++i) {
        DENSIM_PARANOID(std::fabs(residual[i]) <= 1e-6 * scale,
                        "RCNetwork: cached factorization is stale — "
                        "heat residual ", residual[i], " W at node '",
                        nodes_[i].name, "'");
    }
    // First law: at steady state the power crossing the ambient links
    // equals the total injected power.
    double injected = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        injected += powers_w[i];
    const double outflow = ambientHeatFlow(temps, ambient).value();
    DENSIM_PARANOID(
        std::fabs(outflow - injected) <= 1e-6 * std::max(1.0, injected),
        "RCNetwork: first-law violation — ", injected,
        " W injected but ", outflow, " W crosses the ambient links");
#endif
    return temps;
}

void
RCNetwork::debugCorruptFactorization()
{
    factorization();
    // Scaling one pivot is enough to derail every later substitution
    // while keeping the cache flagged valid.
    fact_.lu[0] = fact_.lu[0] * 3.0 + 1.0;
}

Seconds
RCNetwork::stableStep() const
{
    if (stableStepS_ >= 0.0)
        return Seconds(stableStepS_);
    const std::size_t n = nodes_.size();
    std::vector<double> gtot(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        gtot[i] = nodes_[i].ambientConductance;
    for (const Edge &e : edges_) {
        gtot[e.a] += e.conductance;
        gtot[e.b] += e.conductance;
    }
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
        if (nodes_[i].capacitance <= 0.0)
            fatal("RCNetwork: transient use requires positive "
                  "capacitance on node '",
                  nodes_[i].name, "'");
        if (gtot[i] > 0.0)
            dt = std::min(dt, nodes_[i].capacitance / gtot[i]);
    }
    // Safety factor below the explicit-Euler limit.
    stableStepS_ = 0.5 * dt;
    return Seconds(stableStepS_);
}

void
RCNetwork::transientStep(std::vector<double> &temps,
                         const std::vector<double> &powers_w,
                         Celsius ambient, Seconds dt) const
{
    const double t_ambient = ambient.value();
    const double dt_seconds = dt.value();
    const std::size_t n = nodes_.size();
    if (temps.size() != n || powers_w.size() != n)
        panic("RCNetwork::transientStep: vector size mismatch");
    if (dt_seconds < 0.0)
        panic("RCNetwork::transientStep: negative dt");

    const double dt_max = stableStep().value();
    const auto steps = static_cast<std::size_t>(
        std::ceil(dt_seconds / dt_max));
    if (steps == 0)
        return;
    const double h = dt_seconds / static_cast<double>(steps);

    std::vector<double> flow(n);
    for (std::size_t s = 0; s < steps; ++s) {
        for (std::size_t i = 0; i < n; ++i) {
            flow[i] = powers_w[i] +
                      nodes_[i].ambientConductance *
                          (t_ambient - temps[i]);
        }
        for (const Edge &e : edges_) {
            const double q = e.conductance * (temps[e.b] - temps[e.a]);
            flow[e.a] += q;
            flow[e.b] -= q;
        }
        for (std::size_t i = 0; i < n; ++i)
            temps[i] += h * flow[i] / nodes_[i].capacitance;
    }
}

Watts
RCNetwork::ambientHeatFlow(const std::vector<double> &temps,
                           Celsius ambient) const
{
    const double t_ambient = ambient.value();
    if (temps.size() != nodes_.size())
        panic("RCNetwork::ambientHeatFlow: vector size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        total += nodes_[i].ambientConductance * (temps[i] - t_ambient);
    return Watts(total);
}

} // namespace densim
