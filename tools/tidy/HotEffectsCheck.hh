/**
 * @file
 * densim-hot-effects (plugin form): flag unsanctioned effects inside
 * functions annotated `[[clang::annotate("densim::hot")]]` — heap
 * allocation, throw, iostream I/O — unless the function also carries
 * a `densim::allocates:` sanction (covers allocation only) or a
 * `densim::cold` cut.
 *
 * A clang-tidy check sees one TU at a time, so this is the intra-
 * procedural slice of the contract: effects written directly in the
 * body of a hot-annotated function. The full interprocedural proof —
 * bottom-up effect propagation from leaves to the hot roots, with
 * conservative virtual/function-pointer resolution — lives in the
 * portable driver (tools/tidy/hot_effects.py), which every build can
 * run; this check is the in-editor early warning for the same rule
 * (DESIGN.md Sec. 14).
 */

#ifndef DENSIM_TOOLS_TIDY_HOT_EFFECTS_CHECK_HH
#define DENSIM_TOOLS_TIDY_HOT_EFFECTS_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace densim::tidy {

class HotEffectsCheck : public clang::tidy::ClangTidyCheck
{
  public:
    using ClangTidyCheck::ClangTidyCheck;

    void registerMatchers(clang::ast_matchers::MatchFinder *finder)
        override;
    void check(const clang::ast_matchers::MatchFinder::MatchResult
                   &result) override;
};

} // namespace densim::tidy

#endif // DENSIM_TOOLS_TIDY_HOT_EFFECTS_CHECK_HH
