// Known-bad fixture for densim-unseeded-entropy: every classic way of
// smuggling wall-clock or address-space entropy into the model.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>

struct Chip;

double jitterSeed()
{
    std::random_device rd;  // Ambient hardware entropy.
    std::mt19937 gen(rd()); // Unseeded std engine.
    const auto t = std::chrono::steady_clock::now(); // Wall clock.
    (void)t;
    (void)gen;
    return static_cast<double>(std::rand()) +
           static_cast<double>(std::time(nullptr));
}

// Pointer keys iterate in allocation-address order — ASLR entropy.
std::map<Chip *, double> residuals;
