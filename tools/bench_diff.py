#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs benchmark by benchmark.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold PCT]

Both inputs are files produced by
`micro_kernels --benchmark_format=json --benchmark_out=FILE` (or the
same JSON captured from stdout). The script prints a per-benchmark
delta table (baseline time, candidate time, delta %) and exits
nonzero when any benchmark present in both files regressed by more
than --threshold percent (default 10). Benchmarks present in only one
file are listed but never gate.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Return {name: (real_time, time_unit)} from a benchmark JSON file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev from --benchmark_repetitions).
        if row.get("run_type") == "aggregate":
            continue
        name = row.get("name")
        if name is None or "real_time" not in row:
            continue
        out[name] = (float(row["real_time"]), row.get("time_unit", "ns"))
    return out


UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(value, unit):
    return value * UNIT_NS.get(unit, 1.0)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("candidate", help="candidate benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="fail when a benchmark slows down by more than PCT%% "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)

    base = load_benchmarks(args.baseline)
    cand = load_benchmarks(args.candidate)
    if not base or not cand:
        print("bench_diff: no benchmark rows found", file=sys.stderr)
        return 2

    shared = [n for n in base if n in cand]
    only_base = sorted(n for n in base if n not in cand)
    only_cand = sorted(n for n in cand if n not in base)

    width = max((len(n) for n in shared), default=9)
    width = max(width, len("benchmark"))
    header = "{:<{w}}  {:>12}  {:>12}  {:>8}".format(
        "benchmark", "base", "cand", "delta", w=width
    )
    print(header)
    print("-" * len(header))

    regressions = []
    for name in shared:
        b_ns = to_ns(*base[name])
        c_ns = to_ns(*cand[name])
        delta = (c_ns - b_ns) / b_ns * 100.0 if b_ns > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, delta))
        print(
            "{:<{w}}  {:>10.1f}ns  {:>10.1f}ns  {:>+7.1f}%{}".format(
                name, b_ns, c_ns, delta, flag, w=width
            )
        )

    for name in only_base:
        print("{:<{w}}  {:>12}  {:>12}".format(name, "(removed)", "-", w=width))
    for name in only_cand:
        print("{:<{w}}  {:>12}  {:>12}".format(name, "-", "(new)", w=width))

    if regressions:
        print(
            "\nbench_diff: {} benchmark(s) regressed more than {:.1f}%:".format(
                len(regressions), args.threshold
            ),
            file=sys.stderr,
        )
        for name, delta in regressions:
            print("  {}  +{:.1f}%".format(name, delta), file=sys.stderr)
        return 1
    print("\nbench_diff: no regression beyond {:.1f}%".format(args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
