# Empty dependencies file for ext_inlet_sensitivity.
# This may be replaced when dependencies are built.
