/**
 * @file
 * Mutable per-run fault state: sensor health, offline bookkeeping and
 * the over-temperature escalation ladder (DESIGN.md Sec. 11).
 *
 * The engine owns one FaultState per simulation. It answers three
 * questions every epoch:
 *
 *  - what does the DVFS loop *believe* the socket ambient is
 *    (dvfsAmbientC: stuck/noisy/dropped-out sensor semantics over the
 *    true field, with the configured dropout fallback);
 *  - what does the scheduler's chip sensor report (schedSensedC);
 *  - which sockets are offline (failed or quarantined) and where is
 *    each socket on the escalation ladder (escalate).
 *
 * The ladder reads the *true* chip temperature — it models the
 * hardware thermal trip circuit, which is independent of the managed
 * sensor the DVFS loop consumes. That is exactly why a stuck-cold
 * sensor is dangerous: DVFS keeps boosting on the frozen reading
 * while the trip circuit watches the real silicon climb.
 */

#ifndef DENSIM_FAULT_FAULT_STATE_HH
#define DENSIM_FAULT_FAULT_STATE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/units.hh"
#include "fault/fault_config.hh"
#include "util/rng.hh"

namespace densim {

class CkptAccess; // Checkpoint serializer (src/ckpt), friend below.

/** Health of one temperature sensor. */
enum class SensorMode : std::uint8_t
{
    Healthy,
    Stuck,
    Noisy,
    Dropout,
};

/** What the escalation ladder asks the engine to do this epoch. */
enum class EscalationAction : std::uint8_t
{
    None,
    Throttle,   //!< Force the lowest P-state from now on.
    Quarantine, //!< Take the socket offline and re-queue its job.
    Release,    //!< Chip cooled below the limit; lift the throttle.
};

/** Per-run mutable fault state. */
class FaultState
{
  public:
    /** Bind the configuration; call once at engine construction. */
    void configure(const FaultConfig &config, Celsius t_limit);

    /** Reset to all-healthy for an @p n -socket run. */
    void reset(std::size_t n);

    // --- sensors -----------------------------------------------------
    /** Freeze sensor @p s at its current readings. */
    void stickSensor(std::size_t s, Celsius ambient, Celsius chip);
    /** Degrade sensor @p s with Gaussian sigma @p sigma. */
    void noisySensor(std::size_t s, CelsiusDelta sigma);
    /** Drop sensor @p s; @p last_good_ambient is held if configured. */
    void dropSensor(std::size_t s, Celsius last_good_ambient);
    /** Sensor @p s healthy again. */
    void restoreSensor(std::size_t s);

    SensorMode sensorMode(std::size_t s) const
    {
        return sensorMode_[s];
    }

    /**
     * The ambient the DVFS loop should act on given the true
     * @p ambient. Draws from @p rng only in Noisy mode.
     */
    double dvfsAmbientC(std::size_t s, Celsius ambient,
                        Rng &rng) const;

    /**
     * The chip reading the scheduler's sensor reports given the fresh
     * @p sensed and the previously reported @p held.
     */
    double schedSensedC(std::size_t s, Celsius sensed, Celsius held,
                        Rng &rng) const;

    // --- offline bookkeeping -----------------------------------------
    bool failed(std::size_t s) const { return offline_[s] == 1; }
    bool quarantined(std::size_t s) const { return offline_[s] == 2; }
    bool offline(std::size_t s) const { return offline_[s] != 0; }
    std::size_t offlineCount() const { return offlineCount_; }

    void markFailed(std::size_t s);
    void markQuarantined(std::size_t s);
    void markOnline(std::size_t s);

    // --- escalation ladder -------------------------------------------
    /**
     * Advance socket @p s on the ladder given the true @p chip at
     * time @p now. Healthy -> (dwell over trip) Throttle -> (dwell
     * still over trip) Quarantine; a throttled socket that cools
     * below tLimitC yields Release. The caller applies the action.
     */
    EscalationAction escalate(std::size_t s, Celsius chip,
                              Seconds now);

    /** Is the socket under the emergency throttle? */
    bool throttled(std::size_t s) const { return escStage_[s] == 1; }

    /** Should a quarantined socket rejoin the idle pool? */
    bool readmit(std::size_t s, Celsius chip) const
    {
        return quarantined(s) && chip.value() < config_.quarantineExitC;
    }

    // --- fan ---------------------------------------------------------
    void setFlowFrac(double frac) { flowFrac_ = frac; }
    double flowFrac() const { return flowFrac_; }

  private:
    // Checkpoints serialize every mutable array plus flowFrac_;
    // config_/tripC_/limitC_ come back via configure().
    friend class CkptAccess;

    FaultConfig config_;
    double tripC_ = 0.0;  //!< tLimitC + emergencyMarginC.
    double limitC_ = 0.0; //!< tLimitC (throttle-release threshold).

    std::vector<SensorMode> sensorMode_;
    std::vector<double> stuckAmbientC_; //!< Frozen DVFS reading.
    std::vector<double> stuckChipC_;    //!< Frozen scheduler reading.
    std::vector<double> noiseSigmaC_;
    std::vector<double> lastGoodAmbientC_;

    std::vector<std::uint8_t> offline_; //!< 0 ok, 1 failed, 2 quar.
    std::size_t offlineCount_ = 0;

    std::vector<std::uint8_t> escStage_; //!< 0 ok, 1 throttled.
    std::vector<double> overTripSinceS_; //!< < 0: not over trip.

    double flowFrac_ = 1.0;
};

} // namespace densim

#endif // DENSIM_FAULT_FAULT_STATE_HH
