/**
 * @file
 * Differential tests for the incremental engine hot paths: the
 * event-heap completion queue, the delta-maintained ambient-target
 * field, and the DVFS memo must leave simulation results equivalent
 * to the recompute-from-scratch reference paths.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/dense_server_sim.hh"
#include "core/event_heap.hh"
#include "sched/factory.hh"

namespace densim {
namespace {

/** A small, fast configuration exercising all engine paths. */
SimConfig
diffConfig()
{
    SimConfig config;
    config.topo.rows = 3; // 36 sockets
    config.simTimeS = 2.0;
    config.warmupS = 0.5;
    config.socketTauS = 0.5;
    config.load = 0.7;
    config.seed = 42;
    return config;
}

void
expectNearRel(double a, double b, const char *what)
{
    const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
    EXPECT_NEAR(a, b, 1e-9 * scale) << what;
}

void
expectEquivalent(const SimMetrics &a, const SimMetrics &b)
{
    EXPECT_EQ(a.jobsArrived, b.jobsArrived);
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_EQ(a.jobsUnfinished, b.jobsUnfinished);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.runtimeExpansion.count(), b.runtimeExpansion.count());
    expectNearRel(a.runtimeExpansion.mean(), b.runtimeExpansion.mean(),
                  "runtime expansion");
    expectNearRel(a.serviceExpansion.mean(), b.serviceExpansion.mean(),
                  "service expansion");
    expectNearRel(a.queueDelayS.mean(), b.queueDelayS.mean(),
                  "queue delay");
    expectNearRel(a.energyJ, b.energyJ, "energy");
    expectNearRel(a.makespanS, b.makespanS, "makespan");
    expectNearRel(a.totalWork, b.totalWork, "total work");
    expectNearRel(a.totalBusyTime, b.totalBusyTime, "busy time");
    expectNearRel(a.totalFreqTime, b.totalFreqTime, "freq time");
    expectNearRel(a.boostTimeS, b.boostTimeS, "boost time");
    expectNearRel(a.maxChipTempC, b.maxChipTempC, "max chip temp");
    expectNearRel(a.front.workDone, b.front.workDone, "front work");
    expectNearRel(a.back.workDone, b.back.workDone, "back work");
    expectNearRel(a.even.workDone, b.even.workDone, "even work");
}

TEST(PerfEquivalence, IncrementalThermalMatchesReference)
{
    for (const char *name : {"CF", "CP", "Predictive"}) {
        SimConfig fast = diffConfig();
        fast.incrementalThermal = true;
        SimConfig ref = diffConfig();
        ref.incrementalThermal = false;

        DenseServerSim a(fast, makeScheduler(name));
        DenseServerSim b(ref, makeScheduler(name));
        const SimMetrics ma = a.run();
        const SimMetrics mb = b.run();
        SCOPED_TRACE(name);
        expectEquivalent(ma, mb);
    }
}

TEST(PerfEquivalence, IncrementalThermalMatchesWithMigration)
{
    SimConfig fast = diffConfig();
    fast.migrationEnabled = true;
    SimConfig ref = fast;
    ref.incrementalThermal = false;

    DenseServerSim a(fast, makeScheduler("CP"));
    DenseServerSim b(ref, makeScheduler("CP"));
    expectEquivalent(a.run(), b.run());
}

TEST(PerfEquivalence, QuantizedDvfsMemoStaysClose)
{
    // The quantized memo is a documented approximation: results may
    // differ from the exact path, but only within the bound set by
    // the quantization step's effect on the P-state search.
    SimConfig exact = diffConfig();
    SimConfig quant = diffConfig();
    quant.dvfsMemoQuantC = 0.25;

    DenseServerSim a(exact, makeScheduler("CP"));
    DenseServerSim b(quant, makeScheduler("CP"));
    const SimMetrics ma = a.run();
    const SimMetrics mb = b.run();
    EXPECT_EQ(ma.jobsArrived, mb.jobsArrived);
    EXPECT_NEAR(ma.runtimeExpansion.mean(), mb.runtimeExpansion.mean(),
                0.05 * ma.runtimeExpansion.mean());
    EXPECT_NEAR(ma.energyJ, mb.energyJ, 0.05 * ma.energyJ);
}

TEST(PerfEquivalence, ObservabilityIsBitIdentical)
{
    // The disabled-overhead contract (DESIGN.md Sec. 10) is stronger
    // than "equivalent": turning on every runtime observability
    // feature — timeline sampling, trace and JSONL sinks — must leave
    // SimMetrics *bit-identical*, because counters and sinks only
    // read model state, never feed back into it. EXPECT_EQ on
    // doubles, not NEAR.
    SimConfig plain = diffConfig();
    SimConfig observed = diffConfig();
    observed.timelineSampleS = 0.25;
    observed.obsTracePath =
        testing::TempDir() + "perf_equiv_trace.json";
    observed.obsTimelinePath =
        testing::TempDir() + "perf_equiv_timeline.jsonl";

    DenseServerSim a(plain, makeScheduler("CP"));
    DenseServerSim b(observed, makeScheduler("CP"));
    const SimMetrics ma = a.run();
    const SimMetrics mb = b.run();

    EXPECT_EQ(ma.jobsArrived, mb.jobsArrived);
    EXPECT_EQ(ma.jobsCompleted, mb.jobsCompleted);
    EXPECT_EQ(ma.jobsUnfinished, mb.jobsUnfinished);
    EXPECT_EQ(ma.energyJ, mb.energyJ);
    EXPECT_EQ(ma.makespanS, mb.makespanS);
    EXPECT_EQ(ma.totalWork, mb.totalWork);
    EXPECT_EQ(ma.totalBusyTime, mb.totalBusyTime);
    EXPECT_EQ(ma.totalFreqTime, mb.totalFreqTime);
    EXPECT_EQ(ma.boostTimeS, mb.boostTimeS);
    EXPECT_EQ(ma.maxChipTempC, mb.maxChipTempC);
    EXPECT_EQ(ma.runtimeExpansion.mean(), mb.runtimeExpansion.mean());
    EXPECT_EQ(ma.serviceExpansion.mean(), mb.serviceExpansion.mean());
    EXPECT_EQ(ma.queueDelayS.mean(), mb.queueDelayS.mean());
    EXPECT_EQ(ma.chipTempC.mean(), mb.chipTempC.mean());
    EXPECT_EQ(ma.front.workDone, mb.front.workDone);
    EXPECT_EQ(ma.back.workDone, mb.back.workDone);
    EXPECT_EQ(ma.even.workDone, mb.even.workDone);
}

// ------------------------------------------------------- event heap

TEST(EventHeap, OrdersByKeyThenId)
{
    EventHeap heap;
    heap.reset(8);
    heap.upsert(5, 3.0);
    heap.upsert(2, 1.0);
    heap.upsert(7, 2.0);
    heap.upsert(3, 1.0); // Ties broken by lowest id.
    EXPECT_EQ(heap.top(), 2u);
    EXPECT_DOUBLE_EQ(heap.topKey(), 1.0);
    heap.erase(2);
    EXPECT_EQ(heap.top(), 3u);
    heap.erase(3);
    EXPECT_EQ(heap.top(), 7u);
}

TEST(EventHeap, UpsertReplacesKey)
{
    EventHeap heap;
    heap.reset(4);
    heap.upsert(0, 5.0);
    heap.upsert(1, 6.0);
    EXPECT_EQ(heap.top(), 0u);
    heap.upsert(0, 7.0); // Decrease priority of the current top.
    EXPECT_EQ(heap.top(), 1u);
    heap.upsert(1, 9.0);
    EXPECT_EQ(heap.top(), 0u);
    EXPECT_EQ(heap.size(), 2u);
}

TEST(EventHeap, EmptyTopKeyIsInfinite)
{
    EventHeap heap;
    heap.reset(3);
    EXPECT_TRUE(heap.empty());
    EXPECT_TRUE(std::isinf(heap.topKey()));
    heap.upsert(1, 2.0);
    heap.erase(1);
    EXPECT_TRUE(heap.empty());
    EXPECT_TRUE(std::isinf(heap.topKey()));
    heap.erase(1); // Erasing an absent id is a no-op.
    EXPECT_TRUE(heap.empty());
}

TEST(EventHeap, RandomizedAgainstLinearScan)
{
    // The heap must always report the same minimum as a brute-force
    // scan over a mirrored key array.
    const std::size_t n = 32;
    EventHeap heap;
    heap.reset(n);
    std::vector<double> keys(n, -1.0); // -1 = absent.

    std::uint64_t lcg = 99;
    auto next_u = [&lcg]() {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return lcg >> 33;
    };
    for (int step = 0; step < 2000; ++step) {
        const auto id = static_cast<std::size_t>(next_u() % n);
        if (next_u() % 3 == 0 && keys[id] >= 0.0) {
            heap.erase(id);
            keys[id] = -1.0;
        } else {
            const double key =
                static_cast<double>(next_u() % 1000) * 0.125;
            heap.upsert(id, key);
            keys[id] = key;
        }

        double best = -1.0;
        std::size_t best_id = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (keys[i] < 0.0)
                continue;
            if (best < 0.0 || keys[i] < best ||
                (keys[i] == best && i < best_id)) {
                best = keys[i];
                best_id = i;
            }
        }
        if (best_id == n) {
            EXPECT_TRUE(heap.empty());
        } else {
            ASSERT_FALSE(heap.empty());
            EXPECT_EQ(heap.top(), best_id);
            EXPECT_DOUBLE_EQ(heap.topKey(), best);
        }
    }
}

} // namespace
} // namespace densim
