// Ill-formed: power and energy have different dimensions.
#include "core/units.hh"

int
main()
{
    const densim::Watts p(10.0);
    const densim::Joules e(5.0);
    return (p + e).value() > 0.0 ? 0 : 1;
}
