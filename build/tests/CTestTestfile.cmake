# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/airflow_test[1]_include.cmake")
include("/root/repo/build/tests/thermal_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/survey_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/config_io_test[1]_include.cmake")
