/**
 * @file
 * Unit tests for the airflow substrate: first-law relations (checked
 * against Table II of the paper), fan affinity laws, and the chassis
 * flow budget.
 */

#include <gtest/gtest.h>

#include "airflow/fan.hh"
#include "airflow/first_law.hh"
#include "airflow/flow_budget.hh"

namespace densim {
namespace {

TEST(FirstLaw, ConstantNear176)
{
    EXPECT_NEAR(kCelsiusPerWattPerCfm, 1.76, 0.01);
}

/** Table II rows: (server class power per U, required CFM at 20 C). */
struct TableIIRow
{
    double powerPerU;
    double cfm;
};

class TableII : public ::testing::TestWithParam<TableIIRow>
{
};

TEST_P(TableII, RequiredAirflowMatchesPaper)
{
    const TableIIRow row = GetParam();
    EXPECT_NEAR(requiredAirflow(Watts(row.powerPerU),
                                CelsiusDelta(20.0))
                    .value(),
                row.cfm, 0.06);
}

INSTANTIATE_TEST_SUITE_P(PaperRows, TableII,
                         ::testing::Values(TableIIRow{208.0, 18.30},
                                           TableIIRow{147.0, 12.94},
                                           TableIIRow{114.0, 10.03},
                                           TableIIRow{421.0, 37.05},
                                           TableIIRow{588.0, 51.74}));

TEST(FirstLaw, RiseAndRequiredAreInverses)
{
    const Watts watts(123.0);
    const Cfm cfm = requiredAirflow(watts, CelsiusDelta(20.0));
    EXPECT_NEAR(airTemperatureRise(watts, cfm).value(), 20.0, 1e-9);
}

TEST(FirstLaw, AbsorbableHeatInverts)
{
    const Watts q = absorbableHeat(Cfm(10.0), CelsiusDelta(15.0));
    EXPECT_NEAR(airTemperatureRise(q, Cfm(10.0)).value(), 15.0, 1e-9);
}

TEST(FirstLaw, RiseScalesLinearlyWithPower)
{
    const CelsiusDelta r1 = airTemperatureRise(Watts(10.0), Cfm(6.35));
    const CelsiusDelta r2 = airTemperatureRise(Watts(20.0), Cfm(6.35));
    EXPECT_NEAR(r2.value(), 2.0 * r1.value(), 1e-12);
}

TEST(FirstLaw, RiseInverseInFlow)
{
    const CelsiusDelta r1 = airTemperatureRise(Watts(15.0), Cfm(5.0));
    const CelsiusDelta r2 =
        airTemperatureRise(Watts(15.0), Cfm(10.0));
    EXPECT_NEAR(r1.value(), 2.0 * r2.value(), 1e-12);
}

TEST(FirstLaw, ZeroPowerZeroRise)
{
    EXPECT_DOUBLE_EQ(
        airTemperatureRise(Watts(0.0), Cfm(6.35)).value(), 0.0);
}

TEST(FirstLaw, RejectsNonPositiveFlow)
{
    EXPECT_EXIT(airTemperatureRise(Watts(10.0), Cfm(0.0)),
                ::testing::ExitedWithCode(1), "positive");
}

TEST(FirstLaw, RejectsNegativePower)
{
    EXPECT_EXIT(requiredAirflow(Watts(-1.0), CelsiusDelta(20.0)),
                ::testing::ExitedWithCode(1), "negative");
}

TEST(Fan, ActiveCoolBankMeetsServerBudget)
{
    // Five ActiveCool-class fans must deliver the 400 CFM Table III
    // server total.
    Fan bank(Fan::activeCoolSpec(), 5);
    EXPECT_GE(bank.maxDeliveredCfm().value(), 400.0);
}

TEST(Fan, AirflowLinearInSpeed)
{
    Fan fan(Fan::activeCoolSpec());
    EXPECT_NEAR(fan.deliveredCfm(0.5).value(),
                0.5 * fan.deliveredCfm(1.0).value(), 1e-12);
}

TEST(Fan, PowerCubicInSpeed)
{
    Fan fan(Fan::activeCoolSpec());
    EXPECT_NEAR(fan.electricalPower(0.5).value(),
                0.125 * fan.electricalPower(1.0).value(), 1e-12);
}

TEST(Fan, SpeedForCfmRoundTrips)
{
    Fan fan(Fan::activeCoolSpec());
    const Cfm target(0.6 * fan.maxDeliveredCfm().value());
    const double s = fan.speedForCfm(target);
    EXPECT_NEAR(fan.deliveredCfm(s).value(), target.value(), 1e-9);
}

TEST(Fan, SpeedClampsAtMinimum)
{
    Fan fan(Fan::activeCoolSpec());
    EXPECT_DOUBLE_EQ(fan.speedForCfm(Cfm(0.0)),
                     Fan::activeCoolSpec().minSpeedFrac);
}

TEST(Fan, OverCapacityIsFatal)
{
    Fan fan(Fan::activeCoolSpec());
    EXPECT_EXIT(
        fan.speedForCfm(Cfm(10 * fan.maxDeliveredCfm().value())),
                ::testing::ExitedWithCode(1), "cannot deliver");
}

TEST(Fan, PowerForCfmMonotone)
{
    Fan fan(Fan::activeCoolSpec(), 5);
    double last = 0.0;
    for (double cfm = 50.0; cfm <= 400.0; cfm += 50.0) {
        const double p = fan.powerForCfm(Cfm(cfm)).value();
        EXPECT_GE(p, last);
        last = p;
    }
}

TEST(FlowBudget, SutMatchesTableIII)
{
    const FlowBudget budget = FlowBudget::sutBudget();
    EXPECT_DOUBLE_EQ(budget.totalCfm().value(), 400.0);
    EXPECT_NEAR(budget.perSocketCfm().value(), 6.35, 1e-9);
    EXPECT_NEAR(budget.zoneCfm().value(), 12.70, 1e-9);
}

TEST(FlowBudget, NoLeakageSplitsEvenly)
{
    const FlowBudget budget(Cfm(100.0), 4, 2, 0.0);
    EXPECT_DOUBLE_EQ(budget.ductCfm().value(), 25.0);
    EXPECT_DOUBLE_EQ(budget.perSocketCfm().value(), 12.5);
}

TEST(FlowBudget, LeakageReducesDuctFlow)
{
    const FlowBudget tight(Cfm(100.0), 4, 2, 0.0);
    const FlowBudget leaky(Cfm(100.0), 4, 2, 0.3);
    EXPECT_LT(leaky.ductCfm().value(), tight.ductCfm().value());
    EXPECT_NEAR(leaky.ductCfm().value(),
                0.7 * tight.ductCfm().value(), 1e-12);
}

TEST(FlowBudget, RejectsFullLeakage)
{
    EXPECT_EXIT(FlowBudget(Cfm(100.0), 4, 2, 1.0),
                ::testing::ExitedWithCode(1), "leakage");
}

TEST(FlowBudget, SutBudgetSupportsTableIIDensityOptRow)
{
    // The density-optimized class draws 588 W/U; a 4U SUT draws
    // ~2.3 kW. 400 CFM removes that within the 20 C ASHRAE rise
    // budget (first-law check linking Table II and Table III).
    const double heat =
        absorbableHeat(Cfm(400.0), CelsiusDelta(20.0)).value();
    EXPECT_GT(heat, 4 * 588.0 * 0.9);
}

} // namespace
} // namespace densim
