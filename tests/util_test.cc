/**
 * @file
 * Unit tests for the util substrate: RNG determinism and
 * distributional properties, running statistics, percentiles,
 * histograms, and table rendering.
 */

#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace densim {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_EQ(same, 0);
}

TEST(Rng, DoublesInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniform(-3.0, 5.0);
        EXPECT_GE(x, -3.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, UniformMeanNearCenter)
{
    Rng rng(11);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.uniform(0.0, 10.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.05);
}

TEST(Rng, BoundedCoversRangeUniformly)
{
    Rng rng(13);
    std::vector<int> counts(10, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.nextBounded(10)];
    for (int c : counts)
        EXPECT_NEAR(c, draws / 10, draws / 10 * 0.1);
}

TEST(Rng, BoundedNeverReachesBound)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(3), 3u);
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(23);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.exponential(2.5));
    EXPECT_NEAR(s.mean(), 2.5, 0.05);
}

TEST(Rng, ExponentialIsPositive)
{
    Rng rng(29);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments)
{
    Rng rng(31);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.normal());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalShiftScale)
{
    Rng rng(37);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.normal(10.0, 3.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.1);
    EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, LognormalMeanMatchesClosedForm)
{
    Rng rng(41);
    const double mu = -0.5, sigma = 1.0;
    RunningStats s;
    for (int i = 0; i < 400000; ++i)
        s.add(rng.lognormal(mu, sigma));
    const double expected = std::exp(mu + sigma * sigma / 2);
    EXPECT_NEAR(s.mean(), expected, expected * 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(43);
    int hits = 0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits, 0.3 * draws, 0.01 * draws);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded)
{
    Rng parent(47);
    Rng a = parent.split();
    Rng b = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_EQ(same, 0);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.cov(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(4.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.cov(), 0.4);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsBulk)
{
    Rng rng(53);
    RunningStats bulk, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 2.0);
        bulk.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), bulk.count());
    EXPECT_NEAR(a.mean(), bulk.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), bulk.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), bulk.min());
    EXPECT_DOUBLE_EQ(a.max(), bulk.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    const double mean_before = a.mean();
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), mean_before);
    b.merge(a);
    EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(Stats, VectorHelpersAgreeWithRunning)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 10.0};
    RunningStats s;
    for (double x : xs)
        s.add(x);
    EXPECT_DOUBLE_EQ(mean(xs), s.mean());
    EXPECT_DOUBLE_EQ(stddev(xs), s.stddev());
    EXPECT_DOUBLE_EQ(coefficientOfVariation(xs), s.cov());
}

TEST(Stats, PercentileEndpoints)
{
    const std::vector<double> xs{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Stats, PercentileInterpolates)
{
    const std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Stats, TryPercentileIsTotal)
{
    // The total variant for reporting paths that may legitimately see
    // an empty sample (a run completing zero jobs): nullopt instead
    // of the panic percentile() keeps for programmer-error call sites.
    EXPECT_EQ(tryPercentile({}, 50.0), std::nullopt);
    const std::vector<double> xs{5.0, 1.0, 3.0};
    ASSERT_TRUE(tryPercentile(xs, 50.0).has_value());
    EXPECT_DOUBLE_EQ(*tryPercentile(xs, 50.0), percentile(xs, 50.0));
    EXPECT_DOUBLE_EQ(*tryPercentile({7.0}, 99.0), 7.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.99);  // bin 9
    h.add(-5.0);  // clamped to bin 0
    h.add(42.0);  // clamped to bin 9
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinLowEdges)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLow(4), 8.0);
}

TEST(Table, TextRenderingAligned)
{
    TableWriter t({"A", "LongHeader"});
    t.newRow().cell("x").cell(1.5, 1);
    t.newRow().cell("yy").cell(static_cast<long long>(42));
    const std::string text = t.toText();
    EXPECT_NE(text.find("LongHeader"), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscapesSpecialCharacters)
{
    TableWriter t({"name", "value"});
    t.newRow().cell("a,b").cell("say \"hi\"");
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, FormatFixedPrecision)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
}

} // namespace
} // namespace densim
