/**
 * @file
 * HotSpot-class compact chip thermal model.
 *
 * This is densim's stand-in for the paper's "proprietary HotSpot-like
 * model that has been validated with thermal camera measurements"
 * (Sec. III-C). The die is divided into a grid of cells with lateral
 * silicon conduction; each cell conducts vertically (junction-to-case)
 * into a lumped heatsink node that convects to the ambient through the
 * sink's R_ext. Per-application power maps concentrate a fraction of
 * total power in a hot block, producing the 4–7 C lateral spread the
 * paper reports for the ~100 mm^2 X2150 die (Fig. 9a) and playing the
 * reference role in the Eq. (1) validation experiment (Fig. 10).
 *
 * Construction guarantees: with a *uniform* power map the average die
 * temperature is exactly T_amb + P * (R_int + R_ext) — the vertical
 * resistances are exact by construction — so all deviation between
 * this model and Eq. (1) comes from power-map concentration, which is
 * what theta(P, sink) was fitted to absorb.
 */

#ifndef DENSIM_THERMAL_HOTSPOT_MODEL_HH
#define DENSIM_THERMAL_HOTSPOT_MODEL_HH

#include <vector>

#include "core/units.hh"
#include "thermal/heatsink.hh"
#include "thermal/rc_network.hh"

namespace densim {

/** Physical parameters of the die/TIM/spreader/sink stack. */
struct ChipStackParams
{
    int grid = 8;                  //!< Die is grid x grid cells.
    double dieAreaM2 = 100e-6;     //!< X2150 (Kabini) die ~100 mm^2.
    double dieThicknessM = 0.3e-3; //!< Thinned die.
    double siliconK = 110.0;       //!< W/(m*K) at hot temps.
    double siliconVolHeat = 1.63e6; //!< J/(m^3*K).
    double rIntTotal = 0.205;      //!< Junction-to-case total, C/W.
    double socketTauS = 30.0;      //!< Sink/socket time constant, s.
    /**
     * Lateral-conduction multiplier folding in heat spreading through
     * metal layers and the package that a bare 2-D silicon sheet
     * underestimates.
     */
    double lateralSpreadFactor = 1.6;

    // Vertical split of the junction-to-case resistance across the
    // explicit layers (die bulk, TIM, sink base plate). Fractions sum
    // to 1, keeping the uniform-map calibration exact: the parallel
    // combination over all cells equals rIntTotal.
    double dieVertFraction = 0.50;
    double timFraction = 0.35;
    double baseFraction = 0.15;

    // Sink base plate (the lateral heat spreader of this package
    // class: no IHS, the sink base does the spreading).
    double baseK = 200.0;          //!< Aluminum base plate.
    double baseThicknessM = 3e-3;  //!< Plate thickness.
    double baseVolHeat = 2.42e6;   //!< J/(m^3*K), aluminum.
    /**
     * Base plate is larger than the die; lateral conduction per cell
     * scales with thickness * k * overhang factor.
     */
    double baseSpreadFactor = 4.0;
};

/** Placement of a square hot block on the die grid. */
struct HotBlock
{
    int size; //!< Cells per side.
    int row;  //!< Upper-left corner row.
    int col;  //!< Upper-left corner column.
};

/**
 * Normalized per-cell power distribution (fractions sum to 1).
 */
class PowerMap
{
  public:
    /** Uniform distribution over a grid x grid die. */
    static PowerMap uniform(int grid);

    /**
     * Distribution with @p hot_fraction of total power spread over the
     * square hot block @p block; the remainder is uniform over all
     * other cells.
     */
    static PowerMap concentrated(int grid, double hot_fraction,
                                 HotBlock block);

    int grid() const { return grid_; }

    /** Fraction of power in cell (r, c). */
    double at(int r, int c) const;

    /** Flat cell-major access, index r * grid + c. */
    const std::vector<double> &fractions() const { return frac_; }

  private:
    PowerMap(int grid, std::vector<double> frac);

    int grid_;
    std::vector<double> frac_;
};

/** Temperature field summary returned by HotSpotModel queries. */
struct ChipThermalField
{
    std::vector<double> dieTemps; //!< Cell temperatures, C.
    double sinkTemp;              //!< Lumped sink temperature, C.
    double maxT;                  //!< Hottest die cell.
    double minT;                  //!< Coolest die cell.
    double avgT;                  //!< Mean die temperature.

    /** Lateral spread max - min (Fig. 9a metric). */
    double spread() const { return maxT - minT; }
};

/** The gridded chip + sink compact model. */
class HotSpotModel
{
  public:
    HotSpotModel(const ChipStackParams &params, const HeatSink &sink);

    /** Steady field for @p power distributed per @p map. */
    ChipThermalField steady(Watts power, const PowerMap &map,
                            Celsius t_amb) const;

    /**
     * Advance a transient temperature state by @p dt. The
     * state vector layout matches network() nodes; initialize with
     * initialState().
     */
    void transientStep(std::vector<double> &state, Watts power,
                       const PowerMap &map, Celsius t_amb,
                       Seconds dt) const;

    /** All-nodes-at-ambient initial state. */
    std::vector<double> initialState(Celsius t_amb) const;

    /** Summarize a state vector into a ChipThermalField. */
    ChipThermalField summarize(const std::vector<double> &state) const;

    /** Underlying RC network (for inspection/tests). */
    const RCNetwork &network() const { return net_; }

    const ChipStackParams &params() const { return params_; }
    const HeatSink &sink() const { return sink_; }

  private:
    /**
     * Expand a power map into the per-node injection vector. Returns
     * a reference to an internal scratch buffer (valid until the next
     * call) so the steady/transient hot loops do not allocate.
     */
    const std::vector<double> &nodePowers(Watts power,
                                          const PowerMap &map) const;

    ChipStackParams params_;
    HeatSink sink_;
    RCNetwork net_;
    mutable std::vector<double> powerScratch_;
    std::vector<NodeId> cellNodes_; //!< Die cells (power inputs).
    std::vector<NodeId> baseNodes_; //!< Sink base plate cells.
    NodeId sinkNode_;               //!< Lumped fin/sink node.
};

/**
 * Default power-map concentration for a workload drawing @p power:
 * low-power (few active units) workloads concentrate power in a small
 * region while high-power workloads light up the whole die. This is
 * the empirical behaviour theta(P, sink)'s negative slope encodes.
 */
double defaultHotFraction(Watts power);

} // namespace densim

#endif // DENSIM_THERMAL_HOTSPOT_MODEL_HH
