file(REMOVE_RECURSE
  "CMakeFiles/fig13_zone_behavior.dir/fig13_zone_behavior.cc.o"
  "CMakeFiles/fig13_zone_behavior.dir/fig13_zone_behavior.cc.o.d"
  "fig13_zone_behavior"
  "fig13_zone_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_zone_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
