#include "workload/job_generator.hh"

#include <algorithm>
#include <cmath>

#include "power/pstate.hh"
#include "util/logging.hh"
#include "workload/curves.hh"

namespace densim {

JobGenerator::JobGenerator(WorkloadSet gen_set, double load, int sockets,
                           std::uint64_t seed,
                           double max_duration_factor)
    : set_(gen_set), apps_(benchmarksInSet(gen_set)),
      maxDurationFactor_(max_duration_factor), rng_(seed)
{
    if (load <= 0.0 || load > 1.0)
        fatal("JobGenerator: load ", load, " outside (0, 1]");
    if (sockets < 1)
        fatal("JobGenerator: need at least one socket, got ", sockets);
    if (maxDurationFactor_ <= 1.0)
        fatal("JobGenerator: max duration factor must exceed 1, got ",
              maxDurationFactor_);
    // Load is normalized the way the paper's Xperf captures imply:
    // job durations were measured on hardware running at maximum
    // frequency, so 100% load means arrivals fill all sockets with
    // max-frequency-length jobs. Nominal durations here are defined
    // at the highest *sustained* frequency, hence the perfRel
    // correction (a 100% Computation load slightly oversubscribes a
    // server that throttles to 1500 MHz — exactly the regime the
    // paper's high-load results live in).
    const auto &curve = freqCurveFor(set_);
    const double sustained_perf =
        curve.perfRel[PStateTable::x2150().highestSustainedIndex()];
    rate_ = load * sockets / (setMeanDurationS(set_) * sustained_perf);
}

Job
JobGenerator::next()
{
    clockS_ += rng_.exponential(1.0 / rate_);
    const std::size_t app =
        apps_[rng_.nextBounded(apps_.size())];
    const Benchmark &bench = pcmarkCatalog()[app];

    // Lognormal with the application's mean: mean = exp(mu + s^2/2)
    // => mu = ln(mean) - s^2/2.
    const double mean_s = bench.meanDurationMs * 1e-3;
    const double mu =
        std::log(mean_s) - 0.5 * bench.sigmaLn * bench.sigmaLn;
    double duration = rng_.lognormal(mu, bench.sigmaLn);
    duration = std::min(duration, maxDurationFactor_ * mean_s);

    Job job;
    job.id = nextId_++;
    job.benchmark = app;
    job.set = set_;
    job.arrivalS = clockS_;
    job.nominalS = duration;
    return job;
}

std::vector<Job>
JobGenerator::generateUntil(double horizon_s)
{
    std::vector<Job> jobs;
    for (;;) {
        Job job = next();
        if (job.arrivalS >= horizon_s)
            return jobs;
        jobs.push_back(job);
    }
}

std::vector<Job>
JobGenerator::nextWindow(double horizon_s)
{
    std::vector<Job> jobs;
    if (hasPending_) {
        if (pending_.arrivalS >= horizon_s)
            return jobs;
        jobs.push_back(pending_);
        hasPending_ = false;
    }
    for (;;) {
        Job job = next();
        if (job.arrivalS >= horizon_s) {
            pending_ = job;
            hasPending_ = true;
            return jobs;
        }
        jobs.push_back(job);
    }
}

} // namespace densim
