/**
 * @file
 * JSONL export of the applied fault / escalation events of one run.
 *
 * One strict-JSON object per line:
 *   {"tS":1.0,"kind":"fanDerate","socket":null,"value":0.2}
 * with "socket" null for server-wide events. Built on obs/json.hh so
 * every number and string obeys the same RFC 8259 discipline as the
 * other exporters; `python -m json.tool`-per-line clean (the CI fault
 * stage parses it).
 */

#ifndef DENSIM_FAULT_FAULT_LOG_HH
#define DENSIM_FAULT_FAULT_LOG_HH

#include <string>
#include <vector>

#include "fault/fault_event.hh"

namespace densim {

/** Serialize @p events as JSONL (possibly empty). */
std::string faultLogToJsonl(const std::vector<FaultEvent> &events);

/** faultLogToJsonl() to @p path; fatal() on I/O failure. */
void writeFaultLogFile(const std::string &path,
                       const std::vector<FaultEvent> &events);

} // namespace densim

#endif // DENSIM_FAULT_FAULT_LOG_HH
