/**
 * @file
 * Compact thermal RC network: the numerical core of densim's
 * HotSpot-class chip model.
 *
 * A network is a set of nodes (each with a heat capacitance) joined
 * by thermal resistances, with optional resistive links to the
 * ambient. Heat is injected per node. Supported queries:
 *
 *  - steadyState(): solve G*T = P + G_amb*T_amb by dense Gaussian
 *    elimination with partial pivoting (node counts here are a few
 *    hundred at most). The factorization of G depends only on the
 *    network structure, so it is computed once and cached; repeated
 *    solves with different power maps pay only the O(n^2)
 *    substitution (the classic HotSpot steady-state optimization).
 *    Mutating the network (addNode/connect/connectAmbient)
 *    invalidates the cache;
 *  - transientStep(): advance node temperatures by explicit Euler with
 *    automatic sub-stepping below the stability limit
 *    min_i C_i / Gtot_i (also cached against structural changes).
 *
 * The caches are lazily filled inside const queries; concurrent
 * first-time queries on the *same* network object from multiple
 * threads are not synchronized. Distinct networks are independent.
 *
 * The electrical analogy is exact: temperature = voltage, heat flow =
 * current, so steady state conserves energy (total injected power
 * equals total power crossing ambient links), which the test suite
 * verifies as an invariant.
 */

#ifndef DENSIM_THERMAL_RC_NETWORK_HH
#define DENSIM_THERMAL_RC_NETWORK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/units.hh"

namespace densim {

/** Index of a node within an RCNetwork. */
using NodeId = std::size_t;

/** A thermal resistance–capacitance network. */
class RCNetwork
{
  public:
    /**
     * Add a node.
     * @param name Diagnostic label.
     * @param capacitance Heat capacitance (0 allowed for
     *        steady-state-only networks).
     * @return The new node's id.
     */
    NodeId addNode(std::string name, JoulePerKelvin capacitance);

    /** Connect two nodes with a thermal resistance (> 0). */
    void connect(NodeId a, NodeId b, KelvinPerWatt resistance);

    /** Connect a node to the ambient with a thermal resistance. */
    void connectAmbient(NodeId a, KelvinPerWatt resistance);

    /** Number of nodes. */
    std::size_t size() const { return nodes_.size(); }

    /** Name of node @p a. */
    const std::string &name(NodeId a) const;

    /** Capacitance of node @p a. */
    JoulePerKelvin capacitance(NodeId a) const;

    /**
     * Steady-state temperatures for per-node injected @p powers_w and
     * ambient temperature @p t_ambient. Fails if any node is isolated
     * from the ambient (the system would be singular). Bulk
     * power/temperature fields stay raw doubles across this interface
     * — the engine's hot-path boundary (DESIGN.md Sec. 9).
     */
    std::vector<double> steadyState(const std::vector<double> &powers_w,
                                    Celsius t_ambient) const;

    /**
     * Advance @p temps by @p dt under constant @p powers_w and
     * ambient. Sub-steps internally for stability; requires all
     * capacitances positive.
     */
    void transientStep(std::vector<double> &temps,
                       const std::vector<double> &powers_w,
                       Celsius t_ambient, Seconds dt) const;

    /**
     * Net heat flow from the network into the ambient for the
     * given temperature field — equals total injected power at steady
     * state (energy-conservation invariant).
     */
    Watts ambientHeatFlow(const std::vector<double> &temps,
                          Celsius t_ambient) const;

    /** Largest stable explicit-Euler step. */
    Seconds stableStep() const;

    /**
     * Test-only: corrupt the cached LU factorization in place (the
     * cache is filled first if empty). A subsequent steadyState() in
     * a DENSIM_PARANOID build must trip the nodal-residual
     * DENSIM_CHECK — the negative test of the invariant layer. In
     * normal builds the corruption silently yields wrong
     * temperatures, which is exactly the failure mode the paranoid
     * check exists to catch.
     */
    void debugCorruptFactorization();

  private:
    struct Node
    {
        std::string name;
        double capacitance;
        double ambientConductance = 0.0;
    };

    struct Edge
    {
        NodeId a;
        NodeId b;
        double conductance;
    };

    /**
     * Cached LU factorization of the conductance matrix (partial
     * pivoting). `lu` holds U in the (row-permuted) upper triangle and
     * the elimination multipliers in the lower triangle; `perm` is the
     * row permutation.
     */
    struct Factorization
    {
        std::vector<double> lu;
        std::vector<std::size_t> perm;
        bool valid = false;
    };

    void checkNode(NodeId a) const;
    void invalidateCaches();
    const Factorization &factorization() const;

    std::vector<Node> nodes_;
    std::vector<Edge> edges_;
    mutable Factorization fact_;
    mutable double stableStepS_ = -1.0; //!< Cached; < 0 means stale.
};

} // namespace densim

#endif // DENSIM_THERMAL_RC_NETWORK_HH
