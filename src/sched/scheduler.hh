/**
 * @file
 * Scheduler interface and the read-only view of server state that
 * policies are allowed to consult.
 *
 * The paper's centralized job controller (Sec. III-D) keeps a FIFO
 * job queue and, whenever a job and at least one idle socket exist,
 * asks the active scheduling policy to pick the socket. Policies see
 * instantaneous and historical temperatures, socket powers and
 * frequencies, physical location, the coupling map, and the DVFS
 * prediction machinery — everything Sec. IV's schemes require — but
 * can mutate nothing.
 */

#ifndef DENSIM_SCHED_SCHEDULER_HH
#define DENSIM_SCHED_SCHEDULER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/registry.hh"
#include "power/leakage.hh"
#include "power/power_manager.hh"
#include "server/topology.hh"
#include "thermal/coupling_map.hh"
#include "util/rng.hh"
#include "workload/job_generator.hh"

namespace densim {

/**
 * Snapshot of simulator state offered to a policy for one decision.
 * All vectors are indexed by socket id. Pointers are non-owning and
 * valid only for the duration of the pick() call.
 */
struct SchedContext
{
    const ServerTopology *topo;
    const CouplingMap *coupling;
    /**
     * Generation counter of *coupling's coefficients. The engine
     * bumps it whenever the map is rebuilt in place (a fan fault
     * derating every duct's airflow); policies that cache
     * coupling-derived state must key their cache on (coupling,
     * couplingEpoch) — the rebuilt map reuses the same address, so
     * the pointer alone cannot detect the change.
     */
    std::uint64_t couplingEpoch = 0;
    const PowerManager *pm;
    const LeakageModel *leak;
    double inletC;

    /** Idle sockets, ascending ids; never empty during pick(). */
    const std::vector<std::size_t> *idle;

    const std::vector<double> *chipTempC;  //!< Instantaneous chip T.
    const std::vector<double> *histTempC;  //!< Exponentially averaged.
    const std::vector<double> *ambientC;   //!< Current (slow, 30 s)
                                           //!< socket ambient field.
    const std::vector<double> *boostCreditS; //!< Remaining boost-dwell
                                             //!< credit per socket, s.
    const std::vector<double> *powerW;     //!< Current socket power.
    const std::vector<double> *freqMhz;    //!< 0 when idle.
    const std::vector<WorkloadSet> *runningSet; //!< Valid when busy.
    const std::vector<bool> *busy;

    Rng *rng; //!< Policy-visible randomness (deterministic per run).
};

/** Base class for all scheduling policies. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Short policy name as used in the paper ("CF", "CP", ...). */
    virtual const char *name() const = 0;

    /**
     * Choose one socket from ctx.idle for @p job. Must return an
     * element of *ctx.idle.
     */
    virtual std::size_t pick(const Job &job,
                             const SchedContext &ctx) = 0;

    /** Reset internal state between runs (default: nothing). */
    virtual void reset() {}

    /**
     * Register this policy's instruments into @p registry. The base
     * registers "sched.<name>.picks"; subclasses may override to add
     * their own (and should call the base). The registry must outlive
     * the policy.
     */
    virtual void attachObs(obs::Registry &registry);

    /**
     * pick() plus observability accounting — what the engine calls
     * at every placement and migration decision.
     */
    std::size_t
    pickCounted(const Job &job, const SchedContext &ctx)
    {
        if (picks_ != nullptr)
            picks_->inc();
        return pick(job, ctx);
    }

  private:
    obs::Counter *picks_ = nullptr; //!< Owned by the registry.
};

/**
 * Helpers shared by several policies: pick the extreme-valued idle
 * socket with deterministic (lowest-id) or random tie-breaking.
 */
std::size_t pickMinBy(const SchedContext &ctx,
                      const std::vector<double> &key, double tie_eps,
                      bool random_tiebreak);
std::size_t pickMaxBy(const SchedContext &ctx,
                      const std::vector<double> &key, double tie_eps,
                      bool random_tiebreak);

} // namespace densim

#endif // DENSIM_SCHED_SCHEDULER_HH
