/**
 * @file
 * First-law-of-thermodynamics airflow/heat relations.
 *
 * This is the paper's "standardized total cooling requirements
 * formulation of the first law of thermodynamics" [25] used to build
 * Table II and the analytical socket-entry-temperature model of
 * Sec. II-B. For air moving at a volumetric rate V (CFM) absorbing P
 * watts, the steady temperature rise is
 *
 *     dT = P / (rho * cp * V)  =  kCelsiusPerWattPerCfm * P / V_cfm
 *
 * with rho and cp of air near room temperature. The industry constant
 * works out to ~1.76 C*CFM/W, which reproduces Table II exactly
 * (e.g. 208 W/U at dT = 20 C -> 18.30 CFM).
 */

#ifndef DENSIM_AIRFLOW_FIRST_LAW_HH
#define DENSIM_AIRFLOW_FIRST_LAW_HH

#include "core/units.hh"

namespace densim {

/** Density of air, kg/m^3, at ~21 C and 1 atm. */
inline constexpr double kAirDensity = 1.19795;

/** Specific heat of air at constant pressure, J/(kg*K). */
inline constexpr double kAirSpecificHeat = 1005.0;

/**
 * Combined first-law constant: temperature rise in Celsius produced by
 * 1 W carried by 1 CFM of air. Evaluates to ~1.76 C*CFM/W.
 */
inline constexpr double kCelsiusPerWattPerCfm =
    1.0 / (kAirDensity * kAirSpecificHeat * kCfmToM3PerS);

/**
 * Steady air temperature rise when @p flow of airflow absorbs
 * @p heat. Fails for non-positive airflow.
 */
CelsiusDelta airTemperatureRise(Watts heat, Cfm flow);

/** SI-flow overload; converts through toCfm() explicitly. */
CelsiusDelta airTemperatureRise(Watts heat, CubicMetersPerSec flow);

/**
 * Airflow required to remove @p heat with at most @p rise
 * inlet-to-outlet temperature rise — the Table II calculation.
 */
Cfm requiredAirflow(Watts heat, CelsiusDelta rise);

/**
 * Heat a flow of @p flow can absorb within @p rise —
 * the inverse budget question (how much power fits in a duct).
 */
Watts absorbableHeat(Cfm flow, CelsiusDelta rise);

} // namespace densim

#endif // DENSIM_AIRFLOW_FIRST_LAW_HH
