#include "util/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace densim {

namespace {
LogLevel gLogLevel = LogLevel::Warning;
std::atomic<bool> gFatalThrows{false};
} // namespace

LogLevel
logLevel()
{
    return gLogLevel;
}

void
setLogLevel(LogLevel level)
{
    gLogLevel = level;
}

bool
fatalThrows()
{
    return gFatalThrows.load();
}

void
setFatalThrows(bool on)
{
    gFatalThrows.store(on);
}

namespace detail {

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    if (gFatalThrows.load())
        throw FatalError(msg);
    std::cerr << "fatal: " << msg << "\n";
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (gLogLevel >= LogLevel::Warning)
        std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    if (gLogLevel >= LogLevel::Info)
        std::cerr << "info: " << msg << "\n";
}

} // namespace detail

} // namespace densim
