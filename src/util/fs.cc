#include "util/fs.hh"

#include <sys/stat.h>
#include <unistd.h>

namespace densim {

std::string
parentDir(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

bool
dirWritable(const std::string &dir)
{
    struct stat st{};
    if (::stat(dir.c_str(), &st) != 0)
        return false;
    if (!S_ISDIR(st.st_mode))
        return false;
    return ::access(dir.c_str(), W_OK) == 0;
}

bool
pathWritable(const std::string &path)
{
    return dirWritable(parentDir(path));
}

} // namespace densim
