# Empty dependencies file for densim_workload.
# This may be replaced when dependencies are built.
