/**
 * @file
 * Fleet-level results: per-shard SimMetrics plus deterministic
 * roll-ups (DESIGN.md Sec. 15.3).
 *
 * The roll-up is computed by merging shard accumulators in shard-id
 * order after the lockstep loop finishes, so it is a pure function
 * of the per-shard results — bit-identical across worker-thread
 * counts whenever the shards are. serializeFleetMetrics() renders
 * every float in hexfloat precisely so tests can EXPECT_EQ two
 * fleet runs without a tolerance.
 */

#ifndef DENSIM_FLEET_FLEET_METRICS_HH
#define DENSIM_FLEET_FLEET_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.hh"

namespace densim {

/** Results of one fleet run. */
struct FleetMetrics
{
    std::size_t chassis = 0;         //!< Shards simulated.
    std::uint64_t jobsArrived = 0;   //!< Cluster arrivals generated.
    std::uint64_t jobsDispatched = 0; //!< Arrivals routed to shards.
    std::size_t jobsCompleted = 0;   //!< Sum over shards.
    std::size_t jobsUnfinished = 0;  //!< Sum over shards.
    std::size_t migrations = 0;      //!< Sum over shards.

    RunningStats runtimeExpansion;   //!< Merged in shard order.
    RunningStats serviceExpansion;   //!< Merged in shard order.
    RunningStats queueDelayS;        //!< Merged in shard order.

    double energyJ = 0.0;            //!< Sum over shards.
    double makespanS = 0.0;          //!< Max over shards.
    double maxChipTempC = 0.0;       //!< Max over shards.

    std::vector<SimMetrics> perShard;           //!< By shard id.
    std::vector<std::uint64_t> dispatchedPerShard; //!< By shard id.
};

/**
 * Fold @p perShard (indexed by shard id) into the fleet roll-up of
 * @p metrics. Deterministic: iterates shards in id order and uses
 * RunningStats::merge, so the result depends only on the inputs.
 */
void rollUpFleetMetrics(FleetMetrics &metrics);

/**
 * Canonical full-precision rendering (hexfloat) of every field,
 * including the per-shard breakdown. Two FleetMetrics serialize
 * equal iff they are bit-identical — the determinism tests compare
 * these strings directly.
 */
std::string serializeFleetMetrics(const FleetMetrics &metrics);

/** Strict-JSON object for the CLI / CI smoke checks (no trailing \n). */
std::string fleetMetricsToJson(const FleetMetrics &metrics);

} // namespace densim

#endif // DENSIM_FLEET_FLEET_METRICS_HH
