/**
 * @file
 * Probabilistic job arrival model (Sec. III-A / III-D).
 *
 * Jobs arrive by a Poisson process whose rate is set by the target
 * load: rate = load * sockets / mean-job-duration, so a load of L
 * keeps on average a fraction L of the sockets busy when nothing
 * throttles. Each job picks an application uniformly from the chosen
 * benchmark set and draws its nominal duration (time at 1900 MHz)
 * from that application's lognormal model.
 */

#ifndef DENSIM_WORKLOAD_JOB_GENERATOR_HH
#define DENSIM_WORKLOAD_JOB_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"
#include "workload/benchmark.hh"

namespace densim {

class CkptAccess; // Checkpoint serializer (src/ckpt), friend below.

/** One unit of work to schedule. */
struct Job
{
    std::uint64_t id;        //!< Monotonic id (arrival order).
    std::size_t benchmark;   //!< Index into pcmarkCatalog().
    WorkloadSet set;         //!< Set of that benchmark.
    double arrivalS;         //!< Arrival time, seconds.
    double nominalS;         //!< Duration at the highest
                             //!< sustained frequency, seconds.
};

/** Streaming generator of Job arrivals. */
class JobGenerator
{
  public:
    /**
     * @param set Benchmark set to draw from.
     * @param load Target utilization in (0, 1].
     * @param sockets Number of sockets in the system.
     * @param seed RNG seed (generator is deterministic given it).
     * @param max_duration_factor Truncation of the lognormal tail as
     *        a multiple of the application mean (keeps the heavy tail
     *        ~2 orders of magnitude, per Fig. 6a, while bounding
     *        simulation variance).
     */
    JobGenerator(WorkloadSet set, double load, int sockets,
                 std::uint64_t seed, double max_duration_factor = 300.0);

    /** Produce the next job (arrival times strictly increase). */
    Job next();

    /** Generate all jobs arriving before @p horizon_s. */
    std::vector<Job> generateUntil(double horizon_s);

    /**
     * Incremental variant of generateUntil(): returns the jobs
     * arriving in [previous horizon, @p horizon_s), buffering the
     * first overshooting draw so it is delivered by the *next* call
     * instead of being discarded. Calling nextWindow() with an
     * increasing sequence of horizons yields exactly the stream a
     * single generateUntil() over the union would have produced —
     * this is what lets FleetSim fan arrivals out one exchange
     * window at a time without perturbing the workload stream.
     */
    std::vector<Job> nextWindow(double horizon_s);

    /** Poisson arrival rate, jobs per second. */
    double arrivalRate() const { return rate_; }

    WorkloadSet set() const { return set_; }

  private:
    // Checkpoints serialize the mutable stream position (rng_,
    // clockS_, nextId_, pending_/hasPending_); the rest is
    // construction-derived and rebuilt from config.
    friend class CkptAccess;

    WorkloadSet set_;
    std::vector<std::size_t> apps_;
    double rate_;
    double maxDurationFactor_;
    Rng rng_;
    double clockS_ = 0.0;
    std::uint64_t nextId_ = 0;
    Job pending_{};          //!< Lookahead buffer for nextWindow().
    bool hasPending_ = false;
};

} // namespace densim

#endif // DENSIM_WORKLOAD_JOB_GENERATOR_HH
