/**
 * @file
 * Figure 3 — the motivational experiment: Coolest First vs Hottest
 * First on a 2-socket system, arranged coupled (in series in one
 * airstream, like a cartridge) and uncoupled (parallel ducts, like a
 * traditional 1U server). Both arrangements mix an 18-fin and a
 * 30-fin sink.
 *
 * Paper shape at 50% utilization: CF beats HF by ~8% uncoupled; HF
 * beats CF by ~5% when the sockets are coupled. densim reproduces the
 * inversion at a warm-aisle inlet (the paper does not state the
 * experiment's inlet; 2-socket systems need some thermal pressure for
 * the schedulers to differ) and reports execution slowdown (queueing
 * on a 2-server system is dominated by job-length tails, not by
 * placement).
 */

#include <iostream>

#include "core/dense_server_sim.hh"
#include "sched/factory.hh"
#include "util/table.hh"

using namespace densim;

namespace {

SimConfig
twoSocketConfig(bool coupled)
{
    SimConfig config;
    config.load = 0.35;
    config.socketTauS = 1.0;
    config.simTimeS = 12.0;
    config.warmupS = 4.0;
    config.topo.inletC = 50.0;
    if (coupled) {
        config.topo.rows = 1;
        config.topo.cartridgesPerRow = 1;
        config.topo.zonesPerCartridge = 2;
        config.topo.socketsPerZone = 1;
    } else {
        config.topo.rows = 2;
        config.topo.cartridgesPerRow = 1;
        config.topo.zonesPerCartridge = 1;
        config.topo.socketsPerZone = 1;
        config.topo.alternateSinksByRow = true;
        config.coupling.verticalLeak = 0.0;
    }
    return config;
}

double
meanServiceExpansion(bool coupled, const std::string &scheme)
{
    double acc = 0.0;
    const std::vector<std::uint64_t> seeds{7, 11, 23, 41, 97};
    for (std::uint64_t seed : seeds) {
        SimConfig config = twoSocketConfig(coupled);
        config.seed = seed;
        DenseServerSim sim(config, makeScheduler(scheme));
        acc += sim.run().serviceExpansion.mean();
    }
    return acc / static_cast<double>(seeds.size());
}

} // namespace

int
main()
{
    std::cout << "=== Figure 3: CF vs HF, coupled vs uncoupled "
                 "2-socket system ===\n\n";

    const double cf_coupled = meanServiceExpansion(true, "CF");
    const double hf_coupled = meanServiceExpansion(true, "HF");
    const double cf_uncoupled = meanServiceExpansion(false, "CF");
    const double hf_uncoupled = meanServiceExpansion(false, "HF");

    TableWriter table({"Organization", "Scheme", "Service expansion",
                       "Relative performance"});
    table.newRow()
        .cell("uncoupled")
        .cell("CF")
        .cell(cf_uncoupled, 4)
        .cell(1.0, 3);
    table.newRow()
        .cell("uncoupled")
        .cell("HF")
        .cell(hf_uncoupled, 4)
        .cell(cf_uncoupled / hf_uncoupled, 3);
    table.newRow()
        .cell("coupled")
        .cell("CF")
        .cell(cf_coupled, 4)
        .cell(1.0, 3);
    table.newRow()
        .cell("coupled")
        .cell("HF")
        .cell(hf_coupled, 4)
        .cell(cf_coupled / hf_coupled, 3);
    table.print(std::cout);

    std::cout << "\nUncoupled: CF ahead by "
              << formatFixed(100 * (hf_uncoupled / cf_uncoupled - 1), 1)
              << "% (paper: ~8%)\nCoupled:   HF ahead by "
              << formatFixed(100 * (cf_coupled / hf_coupled - 1), 1)
              << "% (paper: ~5%)\n";
    return 0;
}
