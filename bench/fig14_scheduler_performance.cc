/**
 * @file
 * Figure 14 — performance relative to CF for all schemes across the
 * load spectrum, for the Computation, GP and Storage workloads
 * (values > 1 mean faster than CF).
 *
 * Paper shapes: Predictive (and CP) lead at low loads; HF and MinHR
 * take over at high loads where thermal coupling dominates; CP tracks
 * the best scheme across the spectrum, gaining up to ~17% over CF for
 * Computation at 80% load; Storage's gains are muted by its frequency
 * insensitivity. densim's low/high-load crossover sits at ~75% load
 * (see EXPERIMENTS.md for the axis-calibration discussion).
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "sched/factory.hh"
#include "util/table.hh"

using namespace densim;
using namespace densim::bench;

int
main()
{
    std::cout << "=== Figure 14: performance vs CF across loads "
                 "===\n";

    std::vector<double> loads;
    if (std::getenv("DENSIM_BENCH_FAST"))
        loads = {0.3, 0.8};
    else
        loads = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

    for (WorkloadSet set : allWorkloadSets()) {
        std::cout << "\n--- " << workloadSetName(set) << " ---\n";
        const auto grid =
            runAveragedGrid(allSchedulerNames(), set, loads, "CF");

        std::vector<std::string> headers{"Scheme"};
        for (double load : loads)
            headers.push_back(formatFixed(100 * load, 0) + "%");
        TableWriter table(std::move(headers));
        for (const std::string &scheme : allSchedulerNames()) {
            table.newRow().cell(scheme);
            for (double load : loads)
                table.cell(grid.at(scheme).at(load).perfVsBaseline, 3);
        }
        table.print(std::cout);

        // The paper's summary statistics: CP's average gain over CF
        // and its best single-load gain.
        double cp_sum = 0.0, cp_best = 0.0;
        for (double load : loads) {
            const double gain =
                grid.at("CP").at(load).perfVsBaseline;
            cp_sum += gain;
            cp_best = std::max(cp_best, gain);
        }
        std::cout << "CP vs CF: average "
                  << formatFixed(
                         100 * (cp_sum / loads.size() - 1.0), 1)
                  << "%, best " << formatFixed(100 * (cp_best - 1.0), 1)
                  << "% (paper: Computation avg 6.5% / best 17%, GP "
                     "6%, Storage 2.5%)\n";
    }
    return 0;
}
