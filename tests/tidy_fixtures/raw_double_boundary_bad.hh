// Known-bad fixture for densim-raw-double-boundary: unit-carrying
// names crossing a header API boundary as raw doubles.
#ifndef DENSIM_TESTS_TIDY_FIXTURES_RAW_DOUBLE_BOUNDARY_BAD_HH
#define DENSIM_TESTS_TIDY_FIXTURES_RAW_DOUBLE_BOUNDARY_BAD_HH

namespace densim_fixture {

void setAmbient(double ambient_c);         // BAD: Celsius in disguise.
double powerBudget(double power_w, int n); // BAD: Watts in disguise.

} // namespace densim_fixture

#endif // DENSIM_TESTS_TIDY_FIXTURES_RAW_DOUBLE_BOUNDARY_BAD_HH
