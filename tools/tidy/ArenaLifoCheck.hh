/**
 * @file
 * densim-arena-lifo: Arena::mark()/release() pairs must be lexically
 * scoped and unwind LIFO within one function (DESIGN.md Sec. 12):
 * every mark released in the scope that made it, in reverse order of
 * marking, and no return may cross an outstanding mark.
 */

#ifndef DENSIM_TOOLS_TIDY_ARENA_LIFO_CHECK_HH
#define DENSIM_TOOLS_TIDY_ARENA_LIFO_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace densim::tidy {

class ArenaLifoCheck : public clang::tidy::ClangTidyCheck
{
  public:
    using ClangTidyCheck::ClangTidyCheck;

    void registerMatchers(clang::ast_matchers::MatchFinder *finder)
        override;
    void check(const clang::ast_matchers::MatchFinder::MatchResult
                   &result) override;
};

} // namespace densim::tidy

#endif // DENSIM_TOOLS_TIDY_ARENA_LIFO_CHECK_HH
