/**
 * @file
 * Tests for the experiment harness and its worker pool: empty-grid
 * handling, worker-exception propagation (util/parallel.hh), and the
 * ordering-independence regression — the same grid run on 1 and on 4
 * threads must produce bit-identical metrics, since every cell is
 * independently seeded and deterministic.
 */

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "util/parallel.hh"

namespace densim {
namespace {

/** Small grid config: 24 sockets, short horizon. */
SimConfig
gridConfig()
{
    SimConfig config;
    config.topo.rows = 2;
    config.simTimeS = 1.0;
    config.warmupS = 0.25;
    config.socketTauS = 0.5;
    config.seed = 7;
    return config;
}

// ---------------------------------------------------- parallel pool

TEST(Parallel, RunsEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(64);
    for (auto &h : hits)
        h = 0;
    parallelFor(hits.size(), 4,
                [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, ZeroItemsIsANoOp)
{
    parallelFor(0, 4, [](std::size_t) { FAIL() << "ran a work item"; });
}

TEST(Parallel, RethrowsFirstWorkerException)
{
    std::atomic<int> ran{0};
    try {
        parallelFor(100, 4, [&](std::size_t i) {
            ++ran;
            if (i == 3)
                throw std::runtime_error("cell 3 exploded");
        });
        FAIL() << "worker exception was swallowed";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "cell 3 exploded");
    }
    // Abandonment of the remaining items is best-effort (in-flight
    // workers notice the failure at their next claim), so only the
    // upper bound is deterministic.
    EXPECT_LE(ran.load(), 100);
}

TEST(Parallel, ReportsEveryConcurrentWorkerFailure)
{
    // Two workers, two items, both throwing — a latch makes sure
    // both are mid-flight before either throws, so both exceptions
    // are captured (neither worker can abandon early). The first
    // captured one is rethrown; the other must still be reported on
    // stderr instead of vanishing.
    std::atomic<int> armed{0};
    testing::internal::CaptureStderr();
    try {
        parallelFor(2, 2, [&](std::size_t i) {
            ++armed;
            while (armed.load() < 2) {
            }
            throw std::runtime_error(
                "item " + std::to_string(i) + " exploded");
        });
        FAIL() << "worker exception was swallowed";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("exploded"),
                  std::string::npos);
    }
    const std::string log = testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("item 0 exploded"), std::string::npos) << log;
    EXPECT_NE(log.find("item 1 exploded"), std::string::npos) << log;
    EXPECT_NE(log.find("parallelFor: worker"), std::string::npos)
        << log;
}

TEST(Parallel, ReportsNonStandardExceptionsToo)
{
    testing::internal::CaptureStderr();
    EXPECT_THROW(
        parallelFor(1, 1, [](std::size_t) { throw 42; }), int);
    const std::string log = testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("(non-standard exception)"), std::string::npos)
        << log;
}

TEST(Parallel, ExceptionOnSingleThreadPropagates)
{
    EXPECT_THROW(parallelFor(4, 1,
                             [](std::size_t) {
                                 throw std::domain_error("boom");
                             }),
                 std::domain_error);
}

// ------------------------------------------------------- experiment

TEST(Experiment, EmptySpecsYieldEmptyResults)
{
    const std::vector<RunResult> results = runAll({}, 4);
    EXPECT_TRUE(results.empty());
}

TEST(Experiment, GridCoversSchedulersTimesLoads)
{
    const std::vector<RunSpec> specs = makeGrid(
        {"CF", "Random"}, WorkloadSet::Computation, {0.3, 0.6},
        gridConfig());
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].scheduler, "CF");
    EXPECT_DOUBLE_EQ(specs[1].config.load, 0.6);
}

void
expectIdentical(const SimMetrics &a, const SimMetrics &b)
{
    EXPECT_EQ(a.jobsArrived, b.jobsArrived);
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_EQ(a.jobsUnfinished, b.jobsUnfinished);
    EXPECT_EQ(a.runtimeExpansion.count(), b.runtimeExpansion.count());
    // Bitwise equality: each cell's computation is identical no
    // matter which worker thread executed it.
    EXPECT_EQ(a.runtimeExpansion.mean(), b.runtimeExpansion.mean());
    EXPECT_EQ(a.serviceExpansion.mean(), b.serviceExpansion.mean());
    EXPECT_EQ(a.queueDelayS.mean(), b.queueDelayS.mean());
    EXPECT_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.makespanS, b.makespanS);
    EXPECT_EQ(a.totalWork, b.totalWork);
    EXPECT_EQ(a.maxChipTempC, b.maxChipTempC);
}

TEST(Experiment, DeterministicAcrossThreadCounts)
{
    const std::vector<RunSpec> specs = makeGrid(
        {"CF", "CP"}, WorkloadSet::Computation, {0.4, 0.8},
        gridConfig());

    const std::vector<RunResult> serial = runAll(specs, 1);
    const std::vector<RunResult> parallel = runAll(specs, 4);
    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].scheduler + " @ " +
                     std::to_string(specs[i].config.load));
        EXPECT_EQ(serial[i].spec.scheduler, parallel[i].spec.scheduler);
        expectIdentical(serial[i].metrics, parallel[i].metrics);
    }
}

TEST(Experiment, IndexResultsKeysBySchedulerAndLoad)
{
    const std::vector<RunSpec> specs = makeGrid(
        {"CF"}, WorkloadSet::Computation, {0.5}, gridConfig());
    const auto index = indexResults(runAll(specs, 1));
    ASSERT_EQ(index.count("CF"), 1u);
    ASSERT_EQ(index.at("CF").count(0.5), 1u);
    EXPECT_GT(index.at("CF").at(0.5).jobsArrived, 0u);
}

} // namespace
} // namespace densim
