# Empty dependencies file for table3_model_parameters.
# This may be replaced when dependencies are built.
