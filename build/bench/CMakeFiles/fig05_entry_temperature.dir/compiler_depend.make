# Empty compiler generated dependencies file for fig05_entry_temperature.
# This may be replaced when dependencies are built.
