/**
 * @file
 * Shared configuration for the experiment benches.
 *
 * Every SUT bench uses the Table III configuration with two scaled
 * knobs so a bench finishes in seconds rather than the paper's
 * 30-minute runs: the socket time constant is scaled 30 s -> 3 s and
 * the horizon to ~6 s with a 3 s warmup past a steady-state warm
 * start. The steady thermal field — which determines all load-
 * dependent behaviour — is independent of the time-constant scaling
 * (see DESIGN.md Sec. 5). Paper-length runs are available by editing
 * these two numbers.
 *
 * Set DENSIM_BENCH_FAST=1 in the environment to shrink the sweeps
 * for smoke-testing.
 */

#ifndef DENSIM_BENCH_BENCH_COMMON_HH
#define DENSIM_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/experiment.hh"
#include "core/metrics.hh"
#include "core/sim_config.hh"

namespace densim::bench {

/** Seeds averaged by the scheduler benches. */
inline std::vector<std::uint64_t>
benchSeeds()
{
    if (std::getenv("DENSIM_BENCH_FAST"))
        return {42};
    return {42, 1234};
}

/** The bench SUT configuration at one load/workload. */
inline SimConfig
sutBenchConfig(double load, WorkloadSet set)
{
    SimConfig config;
    config.workload = set;
    config.load = load;
    config.socketTauS = 3.0;
    config.simTimeS = std::getenv("DENSIM_BENCH_FAST") ? 4.0 : 6.0;
    config.warmupS = config.simTimeS / 2.0;
    return config;
}

/** Run one (scheduler, set, load) cell averaged across seeds. */
struct AveragedCell
{
    double perfVsBaseline = 0.0; //!< RE_base / RE_scheme, averaged.
    double ed2VsBaseline = 0.0;  //!< ED2_scheme / ED2_base, averaged.
    double avgRelFreq = 0.0;
    double boostFrac = 0.0;
    double workFront = 0.0;
    double workEven = 0.0;
    double freqFront = 0.0;
    double freqBack = 0.0;
};

/**
 * Run the (schedulers x loads) grid for one workload set, averaged
 * across benchSeeds(), normalized per-seed against @p baseline.
 * Result[scheduler][load] -> AveragedCell.
 */
inline std::map<std::string, std::map<double, AveragedCell>>
runAveragedGrid(const std::vector<std::string> &schedulers,
                WorkloadSet set, const std::vector<double> &loads,
                const std::string &baseline)
{
    const auto seeds = benchSeeds();
    std::vector<RunSpec> specs;
    for (std::uint64_t seed : seeds) {
        for (const std::string &scheduler : schedulers) {
            for (double load : loads) {
                RunSpec spec;
                spec.scheduler = scheduler;
                spec.config = sutBenchConfig(load, set);
                spec.config.seed = seed;
                specs.push_back(spec);
            }
        }
    }
    const auto results = runAll(specs);

    // Index per seed for baseline normalization.
    std::map<std::string, std::map<double, AveragedCell>> grid;
    const std::size_t block = schedulers.size() * loads.size();
    for (std::size_t k = 0; k < seeds.size(); ++k) {
        // Locate the baseline metrics of this seed per load.
        std::map<double, const SimMetrics *> base;
        for (std::size_t i = 0; i < block; ++i) {
            const auto &r = results[k * block + i];
            if (r.spec.scheduler == baseline)
                base[r.spec.config.load] = &r.metrics;
        }
        for (std::size_t i = 0; i < block; ++i) {
            const auto &r = results[k * block + i];
            const SimMetrics &m = r.metrics;
            AveragedCell &cell =
                grid[r.spec.scheduler][r.spec.config.load];
            const SimMetrics &b = *base.at(r.spec.config.load);
            const double n = static_cast<double>(seeds.size());
            cell.perfVsBaseline += relativePerformance(m, b) / n;
            cell.ed2VsBaseline += relativeEd2(m, b) / n;
            cell.avgRelFreq += m.avgRelFreq() / n;
            cell.boostFrac += m.boostFraction() / n;
            cell.workFront += m.workFraction(m.front) / n;
            cell.workEven += m.workFraction(m.even) / n;
            cell.freqFront += m.front.avgRelFreq() / n;
            cell.freqBack += m.back.avgRelFreq() / n;
        }
    }
    return grid;
}

} // namespace densim::bench

#endif // DENSIM_BENCH_BENCH_COMMON_HH
