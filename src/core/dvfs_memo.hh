/**
 * @file
 * Per-socket DVFS decision memo — the engine's cache around
 * PowerManager::chooseAtAmbientCapped.
 *
 * A socket whose (workload set, boost cap, ambient temperature)
 * inputs have not changed since its last power-management epoch gets
 * the previous decision back without re-running the P-state search.
 * At the default quantization of 0 a hit requires a bitwise-equal
 * ambient, so the memo is exact; a positive quantization step
 * coarsens the ambient key into buckets of that width, a documented
 * approximation (power error bounded by step x leakage slope) for
 * large design-space sweeps.
 *
 * The memo is keyed implicitly on the P-state table the decisions
 * were made against: reset()/noteTable() record an identity stamp,
 * and a changed stamp drops every entry — a decision made for one
 * table must never be replayed against another.
 */

#ifndef DENSIM_CORE_DVFS_MEMO_HH
#define DENSIM_CORE_DVFS_MEMO_HH

#include <cmath>
#include <cstddef>
#include <vector>

#include "power/power_manager.hh"
#include "util/logging.hh"
#include "workload/benchmark.hh"

namespace densim {

/** Memo table of the last DVFS decision per socket. */
class DvfsMemoTable
{
  public:
    DvfsMemoTable() = default;

    /** Drop everything and size for @p sockets decisions made against
     *  the P-state table identified by @p table_stamp. */
    void reset(std::size_t sockets, const void *table_stamp)
    {
        entries_.assign(sockets, Entry{});
        stamp_ = table_stamp;
    }

    /** Number of socket slots. */
    std::size_t size() const { return entries_.size(); }

    /** Invalidate every memoized decision. */
    void invalidateAll()
    {
        for (Entry &e : entries_)
            e.valid = false;
    }

    /**
     * Declare which P-state table upcoming decisions are made
     * against; if it differs from the stamped one, every entry is
     * invalidated.
     */
    void noteTable(const void *table_stamp)
    {
        if (table_stamp != stamp_) {
            stamp_ = table_stamp;
            invalidateAll();
        }
    }

    /**
     * The memoized decision for @p socket if it was made for the same
     * workload set and boost cap at a matching ambient (bitwise at
     * @p quant_c == 0, same quantization bucket otherwise); nullptr
     * on a miss.
     */
    const DvfsDecision *lookup(std::size_t socket, WorkloadSet set,
                               std::size_t cap, Celsius ambient,
                               double quant_c) const
    {
        if (socket >= entries_.size())
            panic("DvfsMemoTable: socket ", socket, " out of range (",
                  entries_.size(), ")");
        const Entry &e = entries_[socket];
        if (!e.valid || e.set != set || e.cap != cap)
            return nullptr;
        const double ambient_c = ambient.value();
        const bool hit =
            quant_c > 0.0
                ? std::floor(ambient_c / quant_c) ==
                      std::floor(e.ambientC / quant_c)
                : ambient_c == e.ambientC;
        return hit ? &e.d : nullptr;
    }

    /** Record the decision @p d made for the given inputs. */
    void store(std::size_t socket, WorkloadSet set, std::size_t cap,
               Celsius ambient, const DvfsDecision &d)
    {
        if (socket >= entries_.size())
            panic("DvfsMemoTable: socket ", socket, " out of range (",
                  entries_.size(), ")");
        Entry &e = entries_[socket];
        e.valid = true;
        e.set = set;
        e.cap = cap;
        e.ambientC = ambient.value();
        e.d = d;
    }

  private:
    // Checkpoints serialize the entries verbatim (counter-stream
    // determinism: a restored run must hit/miss exactly like the
    // uninterrupted one) and re-stamp via reset()/noteTable() — the
    // raw stamp_ pointer is meaningless across processes.
    friend class CkptAccess;

    struct Entry
    {
        bool valid = false;
        WorkloadSet set = WorkloadSet::Computation;
        std::size_t cap = 0;
        double ambientC = 0.0;
        DvfsDecision d{};
    };

    std::vector<Entry> entries_;
    const void *stamp_ = nullptr;
};

} // namespace densim

#endif // DENSIM_CORE_DVFS_MEMO_HH
