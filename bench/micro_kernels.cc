/**
 * @file
 * google-benchmark microbenchmarks for densim's hot kernels: the
 * coupling-map field evaluation (once per 1 ms epoch), the RC-network
 * steady solve (Fig. 9/10 machinery), scheduler decisions, and a full
 * simulated server-second — the numbers that determine how long the
 * experiment benches take.
 */

#include <limits>

#include <benchmark/benchmark.h>

#include "core/dense_server_sim.hh"
#include "fleet/fleet_sim.hh"
#include "power/leakage.hh"
#include "sched/factory.hh"
#include "sched/prediction.hh"
#include "server/sut.hh"
#include "thermal/hotspot_model.hh"
#include "util/arena.hh"
#include "workload/curves.hh"

using namespace densim;

namespace {

void
BM_CouplingAmbientField(benchmark::State &state)
{
    const ServerTopology sut = makeSutTopology();
    const CouplingMap map =
        makeCouplingMap(sut, defaultCouplingParams());
    std::vector<double> powers(sut.numSockets(), 13.6);
    for (auto _ : state) {
        auto temps = map.ambientTemps(powers, Celsius(18.0));
        benchmark::DoNotOptimize(temps);
    }
}
BENCHMARK(BM_CouplingAmbientField);

void
BM_RcNetworkSteadySolve(benchmark::State &state)
{
    ChipStackParams params;
    params.grid = static_cast<int>(state.range(0));
    const HotSpotModel model(params, HeatSink::fin30());
    const PowerMap map = PowerMap::uniform(params.grid);
    for (auto _ : state) {
        auto field = model.steady(Watts(15.0), map, Celsius(40.0));
        benchmark::DoNotOptimize(field);
    }
}
BENCHMARK(BM_RcNetworkSteadySolve)->Arg(4)->Arg(8)->Arg(12);

void
BM_RcNetworkFactorize(benchmark::State &state)
{
    // First solve on a fresh model: includes the one-time LU
    // factorization that repeated solves (BM_RcNetworkSteadySolve)
    // amortize away.
    ChipStackParams params;
    params.grid = static_cast<int>(state.range(0));
    const PowerMap map = PowerMap::uniform(params.grid);
    for (auto _ : state) {
        const HotSpotModel model(params, HeatSink::fin30());
        auto field = model.steady(Watts(15.0), map, Celsius(40.0));
        benchmark::DoNotOptimize(field);
    }
}
BENCHMARK(BM_RcNetworkFactorize)->Arg(4)->Arg(8)->Arg(12);

void
BM_CouplingPowerDelta(benchmark::State &state)
{
    // Single-socket power change folded into an existing ambient
    // field — the per-epoch cost of the incremental thermal path.
    const ServerTopology sut = makeSutTopology();
    const CouplingMap map =
        makeCouplingMap(sut, defaultCouplingParams());
    const std::vector<double> powers(sut.numSockets(), 13.6);
    std::vector<double> temps =
        map.ambientTemps(powers, Celsius(18.0));
    std::size_t socket = 0;
    double old_p = 13.6, new_p = 2.2;
    for (auto _ : state) {
        map.applyPowerDelta(temps, socket, old_p, new_p);
        std::swap(old_p, new_p);
        socket = (socket + 7) % sut.numSockets();
        benchmark::DoNotOptimize(temps);
    }
}
BENCHMARK(BM_CouplingPowerDelta);

void
BM_DvfsDecision(benchmark::State &state)
{
    const PowerManager pm(PStateTable::x2150(), SimplePeakModel(),
                          Celsius(95.0), 0.10);
    const auto &curve = freqCurveFor(WorkloadSet::Computation);
    double amb = 30.0;
    for (auto _ : state) {
        amb = 30.0 + (amb > 60.0 ? -30.0 : 0.01);
        auto d = pm.chooseAtAmbient(curve, LeakageModel::x2150(),
                                    Celsius(amb),
                                    HeatSink::fin18());
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_DvfsDecision);

void
BM_SchedulerDecision(benchmark::State &state)
{
    // One placement decision on a half-busy SUT.
    const char *names[] = {"CF", "Predictive", "CP"};
    const char *name = names[state.range(0)];
    state.SetLabel(name);

    const ServerTopology topo = makeSutTopology();
    const CouplingMap coupling =
        makeCouplingMap(topo, defaultCouplingParams());
    const PowerManager pm(PStateTable::x2150(), SimplePeakModel(),
                          Celsius(95.0), 0.10);
    Rng rng(1);
    const std::size_t n = topo.numSockets();
    std::vector<double> chip(n, 40.0), hist(n, 40.0), amb(n, 35.0),
        credit(n, 2.0), power(n, 2.2), freq(n, 0.0);
    std::vector<WorkloadSet> sets(n, WorkloadSet::Computation);
    std::vector<std::uint8_t> busy(n, 0);
    std::vector<std::size_t> idle;
    for (std::size_t s = 0; s < n; ++s) {
        if (s % 2 == 0) {
            busy[s] = true;
            freq[s] = 1500.0;
            power[s] = 13.6;
        } else {
            idle.push_back(s);
            chip[s] = 30.0 + static_cast<double>(s % 17);
        }
    }
    SchedContext ctx;
    ctx.topo = &topo;
    ctx.coupling = &coupling;
    ctx.pm = &pm;
    ctx.leak = &LeakageModel::x2150();
    ctx.inletC = 18.0;
    ctx.idle = &idle;
    ctx.nSockets = n;
    ctx.chipTempC = chip.data();
    ctx.histTempC = hist.data();
    ctx.ambientC = amb.data();
    ctx.boostCreditS = credit.data();
    ctx.powerW = power.data();
    ctx.freqMhz = freq.data();
    ctx.runningSet = sets.data();
    ctx.busy = busy.data();
    ctx.rng = &rng;

    auto policy = makeScheduler(name);
    Job job{0, 0, WorkloadSet::Computation, 0.0, 5e-3};
    for (auto _ : state) {
        auto pick = policy->pick(job, ctx);
        benchmark::DoNotOptimize(pick);
    }
}
BENCHMARK(BM_SchedulerDecision)->Arg(0)->Arg(1)->Arg(2);

void
BM_SchedulerDecisionBatch(benchmark::State &state)
{
    // A scheduling epoch's worth of placement decisions with the full
    // engine-side fast path wired up: epoch arena for decision-local
    // scratch, prediction cache (placement/penalty memos + the
    // feasibility ladder), precomputed row map, and the exact-DVFS
    // prune. Unlike BM_SchedulerDecision this measures the amortized
    // per-decision cost the simulator actually pays when several jobs
    // land in one epoch; the cache epoch is bumped between batches
    // exactly as thermalStep does.
    constexpr std::size_t kBatch = 8;
    const char *names[] = {"CF", "Predictive", "CP"};
    const char *name = names[state.range(0)];
    state.SetLabel(name);

    const ServerTopology topo = makeSutTopology();
    const CouplingMap coupling =
        makeCouplingMap(topo, defaultCouplingParams());
    const PStateTable &table = PStateTable::x2150();
    const PowerManager pm(table, SimplePeakModel(), Celsius(95.0),
                          0.10);
    const LeakageModel &leak = LeakageModel::x2150();
    Rng rng(1);
    const std::size_t n = topo.numSockets();
    std::vector<double> chip(n, 40.0), hist(n, 40.0), amb(n, 35.0),
        credit(n, 0.0), power(n, 2.2), freq(n, 0.0);
    std::vector<WorkloadSet> sets(n, WorkloadSet::Computation);
    std::vector<std::uint8_t> busy(n, 0);
    std::vector<std::size_t> pstates(n, 0), idle;
    std::vector<int> rows(n, 0);
    for (std::size_t s = 0; s < n; ++s)
        rows[s] = topo.rowOf(s);
    for (std::size_t s = 0; s < n; ++s) {
        if (s % 2 == 0) {
            // The exact-DVFS prune's contract: each busy socket's
            // P-state really was chosen at its current ambient, so
            // starting the downstream search there is sound.
            busy[s] = true;
            const DvfsDecision d = pm.chooseAtAmbientCapped(
                freqCurveFor(sets[s]), leak, Celsius(amb[s]),
                topo.sinkOf(s), table.highestSustainedIndex());
            pstates[s] = d.pstate;
            freq[s] = d.freqMhz;
            power[s] = d.power.value();
        } else {
            idle.push_back(s);
            chip[s] = 30.0 + static_cast<double>(s % 17);
        }
    }

    Arena arena(64 * 1024);
    PredictionCache cache;
    cache.reset(n, table.size());
    for (std::size_t i = 0; i < table.size(); ++i)
        cache.stateFreqMhz[i] = table.at(i).freqMhz;
    cache.pstate = pstates.data();
    cache.exactDvfs = true;
    // Busy sockets start with no fast-path snapshot (the engine only
    // installs one at setSocketRate), so force the slow path there.
    for (std::size_t s = 0; s < n; ++s)
        if (busy[s])
            cache.fastFeasC[s] =
                -std::numeric_limits<double>::infinity();

    SchedContext ctx;
    ctx.topo = &topo;
    ctx.coupling = &coupling;
    ctx.pm = &pm;
    ctx.leak = &leak;
    ctx.inletC = 18.0;
    ctx.idle = &idle;
    ctx.nSockets = n;
    ctx.chipTempC = chip.data();
    ctx.histTempC = hist.data();
    ctx.ambientC = amb.data();
    ctx.boostCreditS = credit.data();
    ctx.powerW = power.data();
    ctx.freqMhz = freq.data();
    ctx.runningSet = sets.data();
    ctx.busy = busy.data();
    ctx.socketRow = rows.data();
    ctx.rng = &rng;
    ctx.scratch = &arena;
    ctx.cache = &cache;

    auto policy = makeScheduler(name);
    Job job{0, 0, WorkloadSet::Computation, 0.0, 5e-3};
    for (auto _ : state) {
        cache.invalidate(); // New epoch, as after a thermalStep.
        for (std::size_t k = 0; k < kBatch; ++k) {
            auto pick = policy->pick(job, ctx);
            benchmark::DoNotOptimize(pick);
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_SchedulerDecisionBatch)->Arg(0)->Arg(1)->Arg(2);

void
BM_SimulatedServerSecond(benchmark::State &state)
{
    for (auto _ : state) {
        SimConfig config;
        config.load = 0.7;
        config.simTimeS = 1.0;
        config.warmupS = 0.2;
        config.socketTauS = 3.0;
        DenseServerSim sim(config, makeScheduler("CP"));
        auto metrics = sim.run();
        benchmark::DoNotOptimize(metrics);
    }
}
BENCHMARK(BM_SimulatedServerSecond)->Unit(benchmark::kMillisecond);

void
BM_FleetServerSecond(benchmark::State &state)
{
    // A 16-chassis fleet simulating one server-second per shard,
    // swept over worker-thread counts: the lockstep-barrier scaling
    // number. Results are bit-identical across the Arg values (the
    // fleet determinism contract), so this measures pure wall-clock
    // scaling.
    const auto threads = static_cast<unsigned>(state.range(0));
    SimConfig config;
    config.load = 0.7;
    config.simTimeS = 1.0;
    config.warmupS = 0.2;
    config.socketTauS = 3.0;
    config.fleet.chassis = 16;
    // Construction (16 topology + coupling-map builds) is one-time
    // setup; the timed section is the lockstep run itself.
    FleetSim fleet(config, "CP");
    for (auto _ : state) {
        auto metrics = fleet.run(threads);
        benchmark::DoNotOptimize(metrics);
    }
}
BENCHMARK(BM_FleetServerSecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void
BM_PowerManageRedecision(benchmark::State &state)
{
    // Quantized-memo sweep configuration: most powerManage epochs
    // confirm last epoch's DVFS decision, which is exactly the case
    // the pmDecisionPrune fast path elides (counted by
    // dvfs.redecisionsPruned). The quantized memo is used because at
    // the exact default (dvfsMemoQuantC = 0) a bitwise-equal ambient
    // across thermal steps is vanishingly rare and the prune is a
    // structural no-op. Arg(0) re-runs the decision every epoch,
    // Arg(1) prunes; the bench_diff.py delta between the two rows is
    // the datapoint pinning the optimization.
    for (auto _ : state) {
        SimConfig config;
        config.load = 0.7;
        config.simTimeS = 1.0;
        config.warmupS = 0.2;
        config.socketTauS = 3.0;
        config.dvfsMemoQuantC = 0.25;
        config.pmDecisionPrune = state.range(0) != 0;
        DenseServerSim sim(config, makeScheduler("CP"));
        auto metrics = sim.run();
        benchmark::DoNotOptimize(metrics);
    }
}
BENCHMARK(BM_PowerManageRedecision)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// --- observability overhead (DESIGN.md Sec. 10) ---------------------
// Two benches pin the disabled-overhead policy: the always-compiled
// counter increment must stay a plain u64 add, and the engine's
// DENSIM_OBS_PHASE hook must cost nothing in a default build (it
// expands to `static_cast<void>(0)`; in a DENSIM_OBS build this bench
// instead measures the two steady_clock reads of a real PhaseScope).

void
BM_ObsCounterIncrement(benchmark::State &state)
{
    obs::Registry registry;
    obs::Counter *c = &registry.counter("bench.counter");
    for (auto _ : state) {
        c->inc();
        benchmark::DoNotOptimize(*c);
    }
}
BENCHMARK(BM_ObsCounterIncrement);

void
BM_ObsPhaseHook(benchmark::State &state)
{
    obs::PhaseProfiler profiler;
    for (auto _ : state) {
        DENSIM_OBS_PHASE(profiler, obs::Phase::ThermalStep);
        benchmark::DoNotOptimize(profiler);
    }
}
BENCHMARK(BM_ObsPhaseHook);

} // namespace
