/**
 * @file
 * densim clang-tidy plugin module: registers the project checks
 * under the `densim-` prefix. Built as a shared module and loaded
 * with `clang-tidy -load libdensim_tidy_module.so
 * -checks='densim-*'`; tools/tidy/run_densim_tidy.py implements the
 * same rules without LLVM dev headers and is the portable fallback
 * driver CI relies on when this module cannot be built (DESIGN.md
 * Sec. 13).
 */

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "ArenaLifoCheck.hh"
#include "HotEffectsCheck.hh"
#include "HotLayoutCheck.hh"
#include "NondeterministicIterationCheck.hh"
#include "RawDoubleBoundaryCheck.hh"
#include "UnseededEntropyCheck.hh"

namespace densim::tidy {

class DensimTidyModule : public clang::tidy::ClangTidyModule
{
  public:
    void
    addCheckFactories(clang::tidy::ClangTidyCheckFactories &factories)
        override
    {
        factories.registerCheck<NondeterministicIterationCheck>(
            "densim-nondeterministic-iteration");
        factories.registerCheck<UnseededEntropyCheck>(
            "densim-unseeded-entropy");
        factories.registerCheck<ArenaLifoCheck>("densim-arena-lifo");
        factories.registerCheck<HotLayoutCheck>("densim-hot-layout");
        factories.registerCheck<RawDoubleBoundaryCheck>(
            "densim-raw-double-boundary");
        // Intra-TU slice of the interprocedural contract; the full
        // bottom-up effect propagation is the portable driver's
        // hot_effects.py link step (DESIGN.md Sec. 14).
        factories.registerCheck<HotEffectsCheck>(
            "densim-hot-effects");
    }
};

} // namespace densim::tidy

namespace clang::tidy {

static ClangTidyModuleRegistry::Add<densim::tidy::DensimTidyModule>
    X("densim-module", "densim determinism & lifetime checks");

// Anchor so `-load` keeps the module linked in.
volatile int DensimTidyModuleAnchorSource = 0; // NOLINT

} // namespace clang::tidy
