#include "ArenaLifoCheck.hh"

#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace densim::tidy {

namespace {

struct Event
{
    enum Kind
    {
        Mark,
        Release,
        Return,
    };
    Kind kind;
    const VarDecl *marker; // Mark: the assigned variable (may be null);
                           // Release: the argument's decl.
    int depth;
    SourceLocation loc;
};

bool
isArenaCall(const CXXMemberCallExpr *call, llvm::StringRef method)
{
    const CXXMethodDecl *decl = call->getMethodDecl();
    if (decl == nullptr || decl->getName() != method)
        return false;
    const CXXRecordDecl *record = decl->getParent();
    return record != nullptr && record->getName() == "Arena";
}

/// Walks a function body in source order collecting mark/release/
/// return events with their CompoundStmt nesting depth.
void
collectEvents(const Stmt *stmt, int depth, const VarDecl *decl_target,
              std::vector<Event> &events)
{
    if (stmt == nullptr)
        return;
    if (const auto *ret = dyn_cast<ReturnStmt>(stmt)) {
        events.push_back({Event::Return, nullptr, depth,
                          ret->getReturnLoc()});
        // Still descend: the return value may contain calls.
    }
    if (const auto *decl_stmt = dyn_cast<DeclStmt>(stmt)) {
        for (const Decl *d : decl_stmt->decls()) {
            if (const auto *var = dyn_cast<VarDecl>(d)) {
                if (const Expr *init = var->getInit()) {
                    collectEvents(init, depth, var, events);
                }
            }
        }
        return;
    }
    if (const auto *call = dyn_cast<CXXMemberCallExpr>(stmt)) {
        if (isArenaCall(call, "mark")) {
            events.push_back({Event::Mark, decl_target, depth,
                              call->getExprLoc()});
            return;
        }
        if (isArenaCall(call, "release")) {
            const VarDecl *arg = nullptr;
            for (const Expr *a : call->arguments()) {
                if (const auto *ref = dyn_cast<DeclRefExpr>(
                        a->IgnoreParenImpCasts()))
                    arg = dyn_cast<VarDecl>(ref->getDecl());
            }
            events.push_back({Event::Release, arg, depth,
                              call->getExprLoc()});
            return;
        }
    }
    const int child_depth =
        isa<CompoundStmt>(stmt) ? depth + 1 : depth;
    for (const Stmt *child : stmt->children())
        collectEvents(child, child_depth, decl_target, events);
}

std::string
markerName(const VarDecl *marker)
{
    return marker != nullptr ? marker->getNameAsString()
                             : std::string("<unnamed>");
}

} // namespace

void
ArenaLifoCheck::registerMatchers(MatchFinder *finder)
{
    finder->addMatcher(functionDecl(isDefinition(), hasBody(stmt()))
                           .bind("func"),
                       this);
}

void
ArenaLifoCheck::check(const MatchFinder::MatchResult &result)
{
    const auto *func = result.Nodes.getNodeAs<FunctionDecl>("func");
    if (func == nullptr)
        return;
    std::vector<Event> events;
    collectEvents(func->getBody(), 0, nullptr, events);
    bool any = false;
    for (const Event &e : events)
        any = any || e.kind != Event::Return;
    if (!any)
        return;

    // (marker decl, depth, loc)
    std::vector<Event> stack;
    int prev_depth = 0;
    for (const Event &e : events) {
        if (e.depth < prev_depth) {
            while (!stack.empty() && stack.back().depth > e.depth) {
                const Event mark = stack.back();
                stack.pop_back();
                diag(mark.loc,
                     "Arena mark '%0' is not released before its "
                     "scope ends; mark/release must be lexically "
                     "paired")
                    << markerName(mark.marker);
            }
        }
        prev_depth = e.depth;
        switch (e.kind) {
        case Event::Mark:
            stack.push_back(e);
            break;
        case Event::Release:
            if (stack.empty()) {
                diag(e.loc, "Arena release without an outstanding "
                            "mark in this function");
            } else if (e.marker != nullptr &&
                       stack.back().marker != nullptr &&
                       e.marker != stack.back().marker) {
                diag(e.loc,
                     "out-of-LIFO-order Arena release: '%0' released "
                     "while '%1' (marked later) is still outstanding")
                    << markerName(e.marker)
                    << markerName(stack.back().marker);
                for (std::size_t j = stack.size(); j-- > 0;) {
                    if (stack[j].marker == e.marker) {
                        stack.erase(stack.begin() +
                                    static_cast<std::ptrdiff_t>(j));
                        break;
                    }
                }
            } else {
                stack.pop_back();
            }
            break;
        case Event::Return:
            if (!stack.empty()) {
                diag(e.loc,
                     "return crosses %0 outstanding Arena mark(s); "
                     "release before every exit path")
                    << static_cast<unsigned>(stack.size());
            }
            break;
        }
    }
    for (const Event &mark : stack) {
        diag(mark.loc,
             "Arena mark '%0' is never released in this function")
            << markerName(mark.marker);
    }
}

} // namespace densim::tidy
