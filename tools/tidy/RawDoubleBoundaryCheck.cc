#include "RawDoubleBoundaryCheck.hh"

#include <fstream>

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/Support/Regex.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace densim::tidy {

namespace {

// Keep in sync with UNIT_NAME_RE in tools/lint/densim_lint.py — the
// shared vocabulary of unit-carrying parameter names.
const char kUnitNamePattern[] =
    "^(.*(_c|_k|_w|_j|_cfm|_m3s|_kpw|_jpk)"
    "|.*(celsius|kelvin|watt|joule|cfm)"
    "|(t|temp|temperature)(_.*)?"
    "|.*(ambient|inlet|entry)(_c)?"
    "|.*(power|leak|heat|energy)(_w|_j)?"
    "|.*(air)?flow"
    "|.*(rise|delta_t)"
    "|(r_int|r_ext|theta|kappa.*|resistance))$";

// Keep in sync with DIMENSIONLESS in tools/lint/densim_lint.py.
bool
isDimensionless(llvm::StringRef name)
{
    static const char *const kNames[] = {
        "frac",       "fraction",      "scale",
        "slope_per_c", "gated_frac_tdp", "frac_at_ref",
        "hot_fraction", "leakage_frac", "quant",
        "quant_c",
    };
    for (const char *n : kNames)
        if (name == n)
            return true;
    return false;
}

/// Repo-relative key prefix: everything from the trailing "src/".
std::string
repoRelative(llvm::StringRef path)
{
    const std::size_t pos = path.rfind("src/");
    return pos == llvm::StringRef::npos
               ? path.str()
               : path.substr(pos).str();
}

} // namespace

RawDoubleBoundaryCheck::RawDoubleBoundaryCheck(
    llvm::StringRef name, clang::tidy::ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      allowlistPath_(Options.get("Allowlist", ""))
{
    if (allowlistPath_.empty())
        return;
    std::ifstream in(allowlistPath_);
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        while (!line.empty() &&
               (line.back() == ' ' || line.back() == '\t' ||
                line.back() == '\r'))
            line.pop_back();
        std::size_t start = 0;
        while (start < line.size() &&
               (line[start] == ' ' || line[start] == '\t'))
            ++start;
        if (start < line.size())
            allow_.insert(line.substr(start));
    }
}

void
RawDoubleBoundaryCheck::registerMatchers(MatchFinder *finder)
{
    finder->addMatcher(
        parmVarDecl(hasType(asString("double"))).bind("param"), this);
}

void
RawDoubleBoundaryCheck::check(const MatchFinder::MatchResult &result)
{
    const auto *param = result.Nodes.getNodeAs<ParmVarDecl>("param");
    if (param == nullptr || param->getName().empty())
        return;
    const SourceManager &sm = *result.SourceManager;
    const SourceLocation loc = param->getLocation();
    if (loc.isInvalid())
        return;
    const llvm::StringRef file = sm.getFilename(sm.getSpellingLoc(loc));
    if (!file.endswith(".hh"))
        return;
    const llvm::StringRef name = param->getName();
    if (isDimensionless(name))
        return;
    static llvm::Regex unitName(kUnitNamePattern);
    if (!unitName.match(name))
        return;
    const std::string key = repoRelative(file) + ":" + name.str();
    if (allow_.count(key) != 0)
        return;
    diag(loc,
         "raw `double %0` parameter crosses a header API boundary; "
         "use a typed quantity from core/units.hh or add '%1' to "
         "tools/lint/raw_double_allowlist.txt with a review")
        << name << key;
}

} // namespace densim::tidy
