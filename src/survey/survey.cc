#include "survey/survey.hh"

#include <cmath>

#include "airflow/first_law.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace densim {

const char *
serverClassName(ServerClass c)
{
    switch (c) {
      case ServerClass::U1:
        return "1U";
      case ServerClass::U2:
        return "2U";
      case ServerClass::Other:
        return "Other";
      case ServerClass::Blade:
        return "Blade";
      case ServerClass::DensityOpt:
        return "DensityOpt";
    }
    panic("unknown server class");
}

const std::vector<ServerClass> &
allServerClasses()
{
    static const std::vector<ServerClass> classes{
        ServerClass::U1, ServerClass::U2, ServerClass::Other,
        ServerClass::Blade, ServerClass::DensityOpt,
    };
    return classes;
}

const std::vector<ClassModel> &
fig1ClassModels()
{
    // Means from Sec. I; counts partition the 400 SPECpower designs
    // (towers excluded) with the 10 density-optimized designs studied
    // separately from manufacturer specifications.
    static const std::vector<ClassModel> models{
        {ServerClass::U1, 208.0, 1.79, 0.35, 150},
        {ServerClass::U2, 147.0, 1.15, 0.35, 150},
        {ServerClass::Other, 114.0, 0.78, 0.40, 60},
        {ServerClass::Blade, 421.0, 3.47, 0.30, 40},
        {ServerClass::DensityOpt, 588.0, 25.0, 0.45, 10},
    };
    return models;
}

std::vector<SurveyRecord>
synthesizeSurvey(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<SurveyRecord> records;
    for (const ClassModel &model : fig1ClassModels()) {
        // Lognormal with the requested mean and CoV:
        // sigma^2 = ln(1 + cov^2), mu = ln(mean) - sigma^2 / 2.
        const double sigma2 = std::log(1.0 + model.cov * model.cov);
        const double sigma = std::sqrt(sigma2);
        const double mu_p = std::log(model.meanPowerPerU) - sigma2 / 2;
        const double mu_s =
            std::log(model.meanSocketsPerU) - sigma2 / 2;
        for (int i = 0; i < model.count; ++i) {
            // Correlate power and socket density: a design denser in
            // sockets is denser in power (rho ~ 0.7).
            const double z_shared = rng.normal();
            const double rho = 0.7;
            const double z_p =
                rho * z_shared +
                std::sqrt(1.0 - rho * rho) * rng.normal();
            const double z_s =
                rho * z_shared +
                std::sqrt(1.0 - rho * rho) * rng.normal();
            SurveyRecord rec;
            rec.cls = model.cls;
            rec.year =
                2007 + static_cast<int>(rng.nextBounded(10));
            rec.powerPerU = std::exp(mu_p + sigma * z_p);
            rec.socketsPerU = std::exp(mu_s + sigma * z_s);
            records.push_back(rec);
        }
    }
    return records;
}

std::vector<ClassSummary>
summarize(const std::vector<SurveyRecord> &records)
{
    std::vector<ClassSummary> summaries;
    for (ServerClass cls : allServerClasses()) {
        RunningStats power, sockets;
        for (const SurveyRecord &rec : records) {
            if (rec.cls != cls)
                continue;
            power.add(rec.powerPerU);
            sockets.add(rec.socketsPerU);
        }
        if (power.count() == 0)
            continue;
        ClassSummary summary;
        summary.cls = cls;
        summary.count = static_cast<int>(power.count());
        summary.meanPowerPerU = power.mean();
        summary.meanSocketsPerU = sockets.mean();
        summary.cfmPerU20C =
            requiredAirflow(Watts(power.mean()), CelsiusDelta(20.0))
                .value();
        summaries.push_back(summary);
    }
    return summaries;
}

} // namespace densim
