/**
 * @file
 * Tests for the observability layer (src/obs) and its engine wiring:
 * strict-JSON helpers, the counter/gauge registry, phase timers, the
 * Chrome trace sink, and — the regression the layer grew out of — the
 * fixed-grid timeline sampler that replaced the drifting ad-hoc one.
 */

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include <gtest/gtest.h>

#include "core/dense_server_sim.hh"
#include "core/metrics_io.hh"
#include "obs/json.hh"
#include "obs/phase_profiler.hh"
#include "obs/registry.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"
#include "sched/factory.hh"

namespace densim {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Small, fast configuration (36 sockets) for engine-level tests. */
SimConfig
smallConfig()
{
    SimConfig config;
    config.topo.rows = 3;
    config.simTimeS = 2.0;
    config.warmupS = 0.5;
    config.socketTauS = 0.5;
    config.load = 0.7;
    config.seed = 42;
    return config;
}

// ------------------------------------------------------ JSON helpers

TEST(ObsJson, NumbersAreStrict)
{
    std::string out;
    obs::json::appendNumber(out, 1.5);
    EXPECT_EQ(out, "1.5");

    out.clear();
    obs::json::appendNumber(out,
                            std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(out, "null");

    out.clear();
    obs::json::appendNumber(out,
                            -std::numeric_limits<double>::infinity());
    EXPECT_EQ(out, "null");
}

TEST(ObsJson, StringsAreEscaped)
{
    std::string out;
    obs::json::appendString(out, "a\"b\\c\n\t\x01");
    EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
    EXPECT_TRUE(obs::json::validate(out));
}

TEST(ObsJson, ValidateAcceptsDocuments)
{
    for (const char *doc :
         {"{}", "[]", "null", "true", "-1.5e3", "\"x\"",
          R"({"a":[1,2,{"b":null}],"c":"d"})"}) {
        std::string error;
        EXPECT_TRUE(obs::json::validate(doc, &error))
            << doc << ": " << error;
    }
}

TEST(ObsJson, ValidateRejectsNonsense)
{
    for (const char *doc :
         {"", "{", "{}x", "{\"a\":nan}", "{\"a\":inf}", "[1,]",
          "{,\"a\":1}", "{'a':1}", "01", "+1", "{\"a\" 1}"}) {
        EXPECT_FALSE(obs::json::validate(doc)) << doc;
    }
}

TEST(ObsJson, ValidateLinesCountsAndFails)
{
    EXPECT_EQ(obs::json::validateLines("{}\n[1]\n\n\"x\"\n"), 3);
    std::string error;
    EXPECT_EQ(obs::json::validateLines("{}\nnan\n", &error), -1);
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------- registry

TEST(ObsRegistry, CounterRegistrationIsIdempotent)
{
    obs::Registry registry;
    obs::Counter &a = registry.counter("x");
    obs::Counter &b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    a.inc();
    b.inc(2);
    EXPECT_EQ(a.value(), 3u);
}

TEST(ObsRegistry, AddressesStableAcrossLaterRegistrations)
{
    obs::Registry registry;
    obs::Counter *first = &registry.counter("a");
    for (int i = 0; i < 100; ++i) {
        std::string name = "b";
        name += std::to_string(i);
        registry.counter(name);
    }
    EXPECT_EQ(first, &registry.counter("a"));
}

TEST(ObsRegistry, ResetValuesKeepsRegistrations)
{
    obs::Registry registry;
    obs::Counter &c = registry.counter("events");
    registry.gauge("tempC", "C").set(42.0);
    c.inc(7);

    registry.resetValues();
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(registry.gauge("tempC", "C").value(), 0.0);
    EXPECT_EQ(&c, &registry.counter("events"));
}

TEST(ObsRegistry, TypedGaugeTakesQuantities)
{
    obs::Registry registry;
    obs::TypedGauge<Watts> g =
        registry.typedGauge<Watts>("powerW", "W");
    g.set(Watts(13.5));
    EXPECT_EQ(registry.gauge("powerW", "W").value(), 13.5);
    const auto samples = registry.gauges();
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_EQ(samples[0].name, "powerW");
    EXPECT_EQ(samples[0].unit, "W");
}

// ------------------------------------------------------ phase timers

TEST(ObsProfiler, ScopesNestAndAccumulate)
{
    obs::PhaseProfiler profiler;
    EXPECT_EQ(profiler.depth(), 0);
    {
        obs::PhaseScope outer(profiler, obs::Phase::PowerManage);
        EXPECT_EQ(profiler.depth(), 1);
        {
            obs::PhaseScope inner(profiler,
                                  obs::Phase::ProcessWindow);
            EXPECT_EQ(profiler.depth(), 2);
        }
        EXPECT_EQ(profiler.depth(), 1);
    }
    EXPECT_EQ(profiler.depth(), 0);
    EXPECT_EQ(profiler.totals(obs::Phase::PowerManage).calls, 1u);
    EXPECT_EQ(profiler.totals(obs::Phase::ProcessWindow).calls, 1u);
    EXPECT_EQ(profiler.totals(obs::Phase::ThermalStep).calls, 0u);
    // Inclusive timing: the outer scope contains the inner one.
    EXPECT_GE(profiler.totals(obs::Phase::PowerManage).ns,
              profiler.totals(obs::Phase::ProcessWindow).ns);

    profiler.reset();
    EXPECT_EQ(profiler.totals(obs::Phase::PowerManage).calls, 0u);
}

TEST(ObsProfiler, EmitsCompleteEventsToAttachedSink)
{
    obs::PhaseProfiler profiler;
    obs::TraceSink sink;
    sink.enable(true);
    profiler.setSink(&sink);
    {
        obs::PhaseScope scope(profiler, obs::Phase::ThermalStep);
    }
    {
        obs::PhaseScope scope(profiler, obs::Phase::Migration);
    }
    EXPECT_EQ(sink.size(), 2u);
    std::string error;
    EXPECT_TRUE(obs::json::validate(sink.toJson(), &error)) << error;
    EXPECT_NE(sink.toJson().find("thermalStep"), std::string::npos);
}

// -------------------------------------------------------- trace sink

TEST(ObsTrace, JsonIsWellFormed)
{
    obs::TraceSink sink;
    sink.enable(true);
    sink.setProcessName("unit \"test\"");
    sink.addComplete("phase\\one", "engine", 1.0, 2.5);
    sink.addCounter("queueDepth", 3.0, 17.0);
    const std::string json = sink.toJson();
    std::string error;
    EXPECT_TRUE(obs::json::validate(json, &error)) << error;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(ObsTrace, DisabledSinkRecordsNothing)
{
    obs::TraceSink sink;
    sink.addComplete("x", "y", 0.0, 1.0);
    EXPECT_EQ(sink.size(), 0u);
}

TEST(ObsTrace, CapDropsAndReports)
{
    obs::TraceSink sink;
    sink.enable(true);
    sink.setEventCap(2);
    for (int i = 0; i < 5; ++i)
        sink.addComplete("e", "c", i, 1.0);
    EXPECT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink.dropped(), 3u);
    const std::string json = sink.toJson();
    EXPECT_TRUE(obs::json::validate(json));
    EXPECT_NE(json.find("densimDroppedEvents"), std::string::npos);
}

TEST(ObsTrace, PerRunPathInsertsRunIndex)
{
    EXPECT_EQ(obs::perRunPath("trace.json", 3), "trace-run3.json");
    EXPECT_EQ(obs::perRunPath("runs/t.x.json", 0), "runs/t.x-run0.json");
    EXPECT_EQ(obs::perRunPath("a.b/trace", 7), "a.b/trace-run7");
}

// -------------------------------------------------- timeline sampler

TEST(ObsTimeline, GridIsExactUnderAccumulatedEpochError)
{
    // Feed the sampler accumulated `t += epoch` boundaries — the
    // engine's loop variable, carrying float error — and require the
    // *emitted* stamps to sit exactly on k * period.
    obs::TimelineSampler sampler;
    sampler.configure(0.25);
    double t = 0.0;
    std::vector<double> stamps;
    for (int i = 0; i < 100000; ++i) {
        double grid = 0.0;
        if (sampler.due(t, &grid))
            stamps.push_back(grid);
        t += 1e-3; // accumulates rounding error against 0.25 grid
    }
    ASSERT_GE(stamps.size(), 400u);
    for (std::size_t k = 0; k < stamps.size(); ++k)
        EXPECT_DOUBLE_EQ(stamps[k], 0.25 * static_cast<double>(k));
}

TEST(ObsTimeline, SubEpochPeriodSkipsToLatestGridPoint)
{
    // period < epoch: the historical sampler advanced its mark once
    // per epoch and fell permanently behind. The fixed sampler emits
    // at most one sample per epoch, stamped with the *latest*
    // straddled grid point.
    obs::TimelineSampler sampler;
    sampler.configure(0.4);
    double grid = 0.0;
    ASSERT_TRUE(sampler.due(0.0, &grid));
    EXPECT_DOUBLE_EQ(grid, 0.0);
    ASSERT_TRUE(sampler.due(1.0, &grid)); // straddles 0.4 and 0.8
    EXPECT_DOUBLE_EQ(grid, 0.8);          // 0.4 skipped, not replayed
    EXPECT_FALSE(sampler.due(1.1, &grid));
    ASSERT_TRUE(sampler.due(1.2, &grid));
    EXPECT_DOUBLE_EQ(grid, 1.2);
}

TEST(ObsTimeline, DisabledAndResetBehave)
{
    obs::TimelineSampler sampler;
    double grid = 0.0;
    EXPECT_FALSE(sampler.due(10.0, &grid)); // period 0: disabled
    sampler.configure(1.0);
    ASSERT_TRUE(sampler.due(0.0, &grid));
    EXPECT_FALSE(sampler.due(0.5, &grid));
    sampler.reset();
    ASSERT_TRUE(sampler.due(0.0, &grid));
    EXPECT_DOUBLE_EQ(grid, 0.0);
}

TEST(ObsTimeline, JsonlWriterEmitsStrictLines)
{
    std::ostringstream os;
    obs::writeTimelineJsonl(
        os, {0.0, 0.25}, {{18.0, 19.5}, {18.2, 20.1}});
    std::string error;
    EXPECT_EQ(obs::json::validateLines(os.str(), &error), 2) << error;
    EXPECT_NE(os.str().find("\"tS\":0.25"), std::string::npos);
}

// ----------------------------------------------------- engine wiring

TEST(ObsEngine, TimelineStampsLieOnTheExactGrid)
{
    // Regression for the drifting sampler: every emitted timestamp is
    // exactly k * timelineSampleS (EXPECT_DOUBLE_EQ, not NEAR).
    SimConfig config = smallConfig();
    config.timelineSampleS = 0.25;
    DenseServerSim sim(config, makeScheduler("CP"));
    const SimMetrics m = sim.run();
    ASSERT_GE(m.timelineS.size(), 8u);
    ASSERT_EQ(m.timelineS.size(), m.zoneAmbientC.size());
    for (std::size_t k = 0; k < m.timelineS.size(); ++k)
        EXPECT_DOUBLE_EQ(m.timelineS[k],
                         0.25 * static_cast<double>(k));
}

TEST(ObsEngine, SubEpochPeriodEmitsOnePerEpochOnGrid)
{
    // timelineSampleS < pmEpochS: the historical sampler emitted a
    // sample *every* epoch with off-grid stamps forever. Now: still at
    // most one sample per epoch, but stamped on the exact grid.
    SimConfig config = smallConfig();
    config.simTimeS = 0.5;
    config.warmupS = 0.1;
    config.pmEpochS = 1e-2;
    config.timelineSampleS = 4e-3;
    DenseServerSim sim(config, makeScheduler("CP"));
    const SimMetrics m = sim.run();

    ASSERT_FALSE(m.timelineS.empty());
    double prev = -1.0;
    for (double t : m.timelineS) {
        const double k = t / 4e-3;
        EXPECT_DOUBLE_EQ(t, 4e-3 * std::round(k));
        EXPECT_GT(t, prev);
        prev = t;
    }
    // One sample per epoch, no more (the old bug fired every epoch
    // *and* drifted; here the count equals the epoch count only
    // because every epoch straddles a fresh grid point).
    std::size_t engine_epochs = 0;
    for (const auto &c : sim.observability().counters()) {
        if (c.name == "engine.epochs")
            engine_epochs = c.value;
    }
    EXPECT_EQ(m.timelineS.size(), engine_epochs);
}

TEST(ObsEngine, WarmupStraddlingDoesNotShiftTheGrid)
{
    // A warmup boundary that is not a grid multiple must not offset
    // the sampling grid — samples cover the whole run from t = 0.
    SimConfig config = smallConfig();
    config.warmupS = 0.33;
    config.timelineSampleS = 0.25;
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();
    ASSERT_GE(m.timelineS.size(), 3u);
    EXPECT_DOUBLE_EQ(m.timelineS[0], 0.0);
    EXPECT_DOUBLE_EQ(m.timelineS[1], 0.25);
    EXPECT_DOUBLE_EQ(m.timelineS[2], 0.5);
}

TEST(ObsEngine, CountersResetBetweenRunsAndMatchMetrics)
{
    SimConfig config = smallConfig();
    config.timelineSampleS = 0.25;
    DenseServerSim sim(config, makeScheduler("CP"));
    const SimMetrics m1 = sim.run();
    const auto counters1 = sim.observability().counters();
    const SimMetrics m2 = sim.run();
    const auto counters2 = sim.observability().counters();

    // Deterministic engine + per-run reset: identical snapshots.
    ASSERT_EQ(counters1.size(), counters2.size());
    for (std::size_t i = 0; i < counters1.size(); ++i) {
        EXPECT_EQ(counters1[i].name, counters2[i].name);
        EXPECT_EQ(counters1[i].value, counters2[i].value)
            << counters1[i].name;
    }

    std::map<std::string, std::uint64_t> byName;
    for (const auto &c : counters1)
        byName[c.name] = c.value;
    EXPECT_GT(byName["engine.epochs"], 0u);
    EXPECT_EQ(byName["engine.schedDecisions"], sim.decisions());
    EXPECT_EQ(byName["obs.timelineSamples"], m1.timelineS.size());
    // The metric only counts post-warmup completions; the counter
    // counts all of them.
    EXPECT_GE(byName["engine.jobsCompleted"], m1.jobsCompleted);
    EXPECT_GT(byName["engine.jobsPlaced"], 0u);
    EXPECT_GT(byName["sched.CP.picks"], 0u);
    EXPECT_GT(byName["power.dvfsSearches"], 0u);
    EXPECT_GT(byName["dvfs.memoHits"] + byName["dvfs.memoMisses"], 0u);
    (void)m2;
}

TEST(ObsEngine, WritesValidTraceAndTimelineFiles)
{
    const std::string trace_path =
        testing::TempDir() + "obs_test_trace.json";
    const std::string timeline_path =
        testing::TempDir() + "obs_test_timeline.jsonl";
    SimConfig config = smallConfig();
    config.simTimeS = 1.0;
    config.warmupS = 0.2;
    config.timelineSampleS = 0.25;
    config.obsTracePath = trace_path;
    config.obsTimelinePath = timeline_path;
    DenseServerSim sim(config, makeScheduler("CP"));
    const SimMetrics m = sim.run();

    std::string error;
    const std::string trace = slurp(trace_path);
    EXPECT_TRUE(obs::json::validate(trace, &error)) << error;
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);

    const std::string timeline = slurp(timeline_path);
    EXPECT_EQ(obs::json::validateLines(timeline, &error),
              static_cast<long>(m.timelineS.size()))
        << error;
}

// ------------------------------------------------------- metrics I/O

TEST(ObsMetricsIo, JsonIsStrictEvenWithNonFiniteStats)
{
    // A run that completed zero jobs leaves RunningStats::max() at
    // -inf; the historical emitter wrote that straight into the JSON.
    const SimMetrics empty{};
    const std::string json = metricsToJson(empty);
    std::string error;
    EXPECT_TRUE(obs::json::validate(json, &error)) << error;
    EXPECT_NE(json.find("\"runtimeExpansionMax\":null"),
              std::string::npos);
    // First-field placement: opens cleanly, no "{," artifact from the
    // historical mismatched field() overloads.
    EXPECT_EQ(json.rfind("{\"jobsArrived\":", 0), 0u);
}

TEST(ObsMetricsIo, CountersToJsonIsStrict)
{
    SimConfig config = smallConfig();
    DenseServerSim sim(config, makeScheduler("CP"));
    sim.run();
    const std::string json = countersToJson(sim.observability());
    std::string error;
    EXPECT_TRUE(obs::json::validate(json, &error)) << error;
    EXPECT_NE(json.find("\"engine.epochs\""), std::string::npos);
    EXPECT_NE(json.find("\"unit\":\"W\""), std::string::npos);
}

TEST(ObsMetricsIo, TimelineToJsonlMatchesFileFormat)
{
    SimConfig config = smallConfig();
    config.timelineSampleS = 0.5;
    DenseServerSim sim(config, makeScheduler("CF"));
    const SimMetrics m = sim.run();
    const std::string jsonl = timelineToJsonl(m);
    std::string error;
    EXPECT_EQ(obs::json::validateLines(jsonl, &error),
              static_cast<long>(m.timelineS.size()))
        << error;
    EXPECT_EQ(timelineToJsonl(SimMetrics{}), "");
}

} // namespace
} // namespace densim
