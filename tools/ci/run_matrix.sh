#!/usr/bin/env bash
#
# Local equivalent of the GitHub Actions matrix
# (.github/workflows/ci.yml): runs every tools/check.sh stage in
# sequence on one machine. Use this where Actions is unavailable.
#
#   tools/ci/run_matrix.sh

set -euo pipefail
exec "$(dirname "$0")/../check.sh" plain asan tsan paranoid lint
