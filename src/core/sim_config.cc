#include "core/sim_config.hh"

#include "util/fs.hh"
#include "util/logging.hh"

namespace densim {

namespace {

/**
 * Fail fast on an unwritable output sink: these files are written at
 * the *end* of a run, and a typo'd directory used to fatal() only
 * after minutes of simulation.
 */
void
checkSinkPath(const char *key, const std::string &path)
{
    if (path.empty())
        return;
    if (!pathWritable(path)) {
        fatal("SimConfig: ", key, " = '", path, "': directory '",
              parentDir(path),
              "' does not exist or is not writable");
    }
}

} // namespace

void
SimConfig::validate() const
{
    if (load <= 0.0 || load > 1.0)
        fatal("SimConfig: load ", load, " outside (0, 1]");
    if (simTimeS <= 0.0)
        fatal("SimConfig: simTimeS must be positive");
    if (warmupS < 0.0 || warmupS >= simTimeS)
        fatal("SimConfig: warmup ", warmupS,
              " must lie inside the simulation window ", simTimeS);
    if (drainFactor < 1.0)
        fatal("SimConfig: drain factor must be >= 1");
    if (pmEpochS <= 0.0 || chipTauS <= 0.0 || socketTauS <= 0.0 ||
        histTauS <= 0.0) {
        fatal("SimConfig: time constants must be positive");
    }
    if (tLimitC <= 0.0 || rIntCW <= 0.0)
        fatal("SimConfig: thermal parameters must be positive");
    if (gatedFracTdp < 0.0 || gatedFracTdp > 1.0)
        fatal("SimConfig: gated power fraction outside [0, 1]");
    if (boostRefillRate < 0.0 || boostBurstS < 0.0)
        fatal("SimConfig: boost governor parameters must be "
              "non-negative");
    if (sensorNoiseC < 0.0 || sensorQuantC < 0.0)
        fatal("SimConfig: sensor parameters must be non-negative");
    if (fanPowerW < 0.0)
        fatal("SimConfig: fan power must be non-negative");
    if (migrationIntervalS <= 0.0 || migrationCostS < 0.0 ||
        migrationMinRemainingS < 0.0 || migrationMaxPerPass < 0) {
        fatal("SimConfig: invalid migration parameters");
    }
    if (dvfsMemoQuantC < 0.0)
        fatal("SimConfig: DVFS memo quantization must be "
              "non-negative");
    if (ambientBatchFrac < 0.0 || ambientBatchFrac > 1.0)
        fatal("SimConfig: ambient batch crossover fraction must lie "
              "in [0, 1]");
    if (timelineSampleS < 0.0)
        fatal("SimConfig: timeline sample period must be "
              "non-negative");
    if (!obsTimelinePath.empty() && timelineSampleS <= 0.0)
        fatal("SimConfig: obs.timelinePath needs timelineSampleS > 0");
    checkSinkPath("obs.tracePath", obsTracePath);
    checkSinkPath("obs.timelinePath", obsTimelinePath);
    checkSinkPath("fault.logPath", fault.logPath);
    fault.validate(tLimit());
    fleet.validate(pmEpochS);
}

} // namespace densim
