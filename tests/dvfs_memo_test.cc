/**
 * @file
 * Tests for the DVFS decision memo (core/dvfs_memo.hh): exact-key
 * semantics at quantization 0, bucket semantics at a positive step,
 * invalidation on boost-cap and P-state-table changes, and the
 * engine-level bound on how far a quantized memo may diverge from
 * the exact path.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/dense_server_sim.hh"
#include "core/dvfs_memo.hh"
#include "sched/factory.hh"

namespace densim {
namespace {

DvfsDecision
decision(std::size_t pstate, double power_w)
{
    DvfsDecision d{};
    d.pstate = pstate;
    d.power = Watts(power_w);
    d.feasible = true;
    return d;
}

TEST(DvfsMemo, ExactModeRequiresBitwiseEqualAmbient)
{
    DvfsMemoTable memo;
    memo.reset(4, &memo);
    memo.store(1, WorkloadSet::Computation, 5, Celsius(40.0),
               decision(5, 20.0));

    const DvfsDecision *hit =
        memo.lookup(1, WorkloadSet::Computation, 5, Celsius(40.0), 0.0);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->pstate, 5u);

    // The tiniest ambient change misses in exact mode.
    EXPECT_EQ(memo.lookup(1, WorkloadSet::Computation, 5,
                          Celsius(40.0 + 1e-12), 0.0),
              nullptr);
    // Other sockets are independent slots.
    EXPECT_EQ(memo.lookup(0, WorkloadSet::Computation, 5, Celsius(40.0), 0.0),
              nullptr);
}

TEST(DvfsMemo, QuantizedModeHitsWithinBucketOnly)
{
    DvfsMemoTable memo;
    memo.reset(2, &memo);
    memo.store(0, WorkloadSet::Computation, 5, Celsius(40.1),
               decision(4, 18.0));

    // 40.1 and 40.2 share the [40.0, 40.25) bucket at a 0.25 C step.
    EXPECT_NE(memo.lookup(0, WorkloadSet::Computation, 5, Celsius(40.2), 0.25),
              nullptr);
    // 40.3 lands in the next bucket.
    EXPECT_EQ(memo.lookup(0, WorkloadSet::Computation, 5, Celsius(40.3), 0.25),
              nullptr);
    // Negative ambients bucket consistently too.
    memo.store(1, WorkloadSet::Computation, 5, Celsius(-0.1),
               decision(3, 15.0));
    EXPECT_EQ(memo.lookup(1, WorkloadSet::Computation, 5, Celsius(0.1), 0.25),
              nullptr);
}

TEST(DvfsMemo, CapAndSetChangesMiss)
{
    DvfsMemoTable memo;
    memo.reset(1, &memo);
    memo.store(0, WorkloadSet::Computation, 7, Celsius(40.0),
               decision(7, 25.0));

    // The boost-dwell governor lowers the cap when credit runs out:
    // the memoized boost decision must not be replayed.
    EXPECT_EQ(memo.lookup(0, WorkloadSet::Computation, 5, Celsius(40.0), 1.0),
              nullptr);
    EXPECT_EQ(memo.lookup(0, WorkloadSet::Storage, 7, Celsius(40.0), 1.0),
              nullptr);
    EXPECT_NE(memo.lookup(0, WorkloadSet::Computation, 7, Celsius(40.0), 1.0),
              nullptr);
}

TEST(DvfsMemo, PStateTableChangeInvalidatesEverything)
{
    DvfsMemoTable memo;
    const int table_a = 0;
    const int table_b = 0;
    memo.reset(2, &table_a);
    memo.store(0, WorkloadSet::Computation, 5, Celsius(40.0),
               decision(5, 20.0));
    memo.store(1, WorkloadSet::Storage, 5, Celsius(35.0), decision(4, 16.0));

    // Same table: entries survive.
    memo.noteTable(&table_a);
    EXPECT_NE(memo.lookup(0, WorkloadSet::Computation, 5, Celsius(40.0), 0.0),
              nullptr);

    // A different P-state table drops every memoized decision — a
    // decision made against one table must never be replayed against
    // another.
    memo.noteTable(&table_b);
    EXPECT_EQ(memo.lookup(0, WorkloadSet::Computation, 5, Celsius(40.0), 0.0),
              nullptr);
    EXPECT_EQ(memo.lookup(1, WorkloadSet::Storage, 5, Celsius(35.0), 0.0),
              nullptr);

    // Entries stored after the swap hit again.
    memo.store(0, WorkloadSet::Computation, 5, Celsius(40.0),
               decision(5, 20.0));
    EXPECT_NE(memo.lookup(0, WorkloadSet::Computation, 5, Celsius(40.0), 0.0),
              nullptr);
}

TEST(DvfsMemo, InvalidateAllDropsEntries)
{
    DvfsMemoTable memo;
    memo.reset(1, &memo);
    memo.store(0, WorkloadSet::Computation, 5, Celsius(40.0),
               decision(5, 20.0));
    memo.invalidateAll();
    EXPECT_EQ(memo.lookup(0, WorkloadSet::Computation, 5, Celsius(40.0), 0.0),
              nullptr);
}

// --------------------------------------------- engine-level bounds

SimConfig
memoConfig()
{
    SimConfig config;
    config.topo.rows = 3;
    config.simTimeS = 2.0;
    config.warmupS = 0.5;
    config.socketTauS = 0.5;
    config.load = 0.7;
    config.seed = 42;
    return config;
}

TEST(DvfsMemo, QuantizedEngineDivergenceIsBounded)
{
    // The quantized memo is a documented approximation: coarser
    // buckets may reuse a slightly stale decision, but headline
    // metrics must stay within a few percent of the exact path, and
    // a finer step must not diverge more than this loose bound.
    SimConfig exact = memoConfig();
    DenseServerSim a(exact, makeScheduler("CP"));
    const SimMetrics ma = a.run();

    for (double quant : {0.1, 0.5}) {
        SimConfig q = memoConfig();
        q.dvfsMemoQuantC = quant;
        DenseServerSim b(q, makeScheduler("CP"));
        const SimMetrics mb = b.run();
        SCOPED_TRACE(quant);
        EXPECT_EQ(ma.jobsArrived, mb.jobsArrived);
        EXPECT_NEAR(ma.runtimeExpansion.mean(),
                    mb.runtimeExpansion.mean(),
                    0.05 * ma.runtimeExpansion.mean());
        EXPECT_NEAR(ma.energyJ, mb.energyJ, 0.05 * ma.energyJ);
        EXPECT_NEAR(ma.avgRelFreq(), mb.avgRelFreq(),
                    0.05 * ma.avgRelFreq());
    }
}

TEST(DvfsMemo, ZeroQuantizationIsExactlyTheUnmemoizedPath)
{
    // At quant 0 the memo only ever replays bit-identical inputs, so
    // identical configurations must produce bit-identical results —
    // the memo is invisible. (perf_equivalence_test covers the
    // incremental-vs-reference engine comparison.)
    DenseServerSim a(memoConfig(), makeScheduler("CP"));
    DenseServerSim b(memoConfig(), makeScheduler("CP"));
    const SimMetrics ma = a.run();
    const SimMetrics mb = b.run();
    EXPECT_EQ(ma.energyJ, mb.energyJ);
    EXPECT_EQ(ma.jobsCompleted, mb.jobsCompleted);
    EXPECT_EQ(ma.runtimeExpansion.mean(), mb.runtimeExpansion.mean());
}

} // namespace
} // namespace densim
