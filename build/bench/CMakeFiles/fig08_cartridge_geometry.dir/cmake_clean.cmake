file(REMOVE_RECURSE
  "CMakeFiles/fig08_cartridge_geometry.dir/fig08_cartridge_geometry.cc.o"
  "CMakeFiles/fig08_cartridge_geometry.dir/fig08_cartridge_geometry.cc.o.d"
  "fig08_cartridge_geometry"
  "fig08_cartridge_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cartridge_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
