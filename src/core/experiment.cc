#include "core/experiment.hh"

#include <atomic>
#include <thread>

#include "sched/factory.hh"
#include "util/logging.hh"

namespace densim {

RunResult
runOne(const RunSpec &spec)
{
    DenseServerSim sim(spec.config, makeScheduler(spec.scheduler));
    RunResult result;
    result.spec = spec;
    result.metrics = sim.run();
    return result;
}

std::vector<RunResult>
runAll(const std::vector<RunSpec> &specs, unsigned threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(threads, specs.size());

    std::vector<RunResult> results(specs.size());
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= specs.size())
                return;
            results[i] = runOne(specs[i]);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return results;
}

std::vector<RunSpec>
makeGrid(const std::vector<std::string> &schedulers, WorkloadSet set,
         const std::vector<double> &loads, const SimConfig &base)
{
    std::vector<RunSpec> specs;
    specs.reserve(schedulers.size() * loads.size());
    for (const std::string &scheduler : schedulers) {
        for (double load : loads) {
            RunSpec spec;
            spec.scheduler = scheduler;
            spec.config = base;
            spec.config.workload = set;
            spec.config.load = load;
            specs.push_back(spec);
        }
    }
    return specs;
}

std::map<std::string, std::map<double, SimMetrics>>
indexResults(const std::vector<RunResult> &results)
{
    std::map<std::string, std::map<double, SimMetrics>> index;
    for (const RunResult &r : results)
        index[r.spec.scheduler][r.spec.config.load] = r.metrics;
    return index;
}

} // namespace densim
