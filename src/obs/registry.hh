/**
 * @file
 * Counter/gauge registry — densim's always-on telemetry primitives.
 *
 * Components (the engine, the power manager, scheduling policies)
 * register named instruments once, cache the returned reference, and
 * update it from the hot loop:
 *
 *  - Counter: monotone event count within one run. Increment is a
 *    single non-atomic u64 add — the simulator is single-threaded per
 *    run (Experiment parallelism is one engine per thread, each with
 *    its own registry), so no synchronization is needed or wanted on
 *    the hot path.
 *  - Gauge: last-written double with a unit label. TypedGauge<Q>
 *    wraps a gauge so it can only be set from the matching
 *    core/units.hh quantity (e.g. Watts) — the unit discipline of
 *    DESIGN.md Sec. 9 extended to telemetry.
 *
 * Instruments live for the registry's lifetime at stable addresses
 * (node-based map), so cached pointers never dangle. resetValues()
 * zeroes every value while keeping registrations — called by the
 * engine between runs so each run reports only its own events.
 */

#ifndef DENSIM_OBS_REGISTRY_HH
#define DENSIM_OBS_REGISTRY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace densim::obs {

/** Monotone event counter; single-threaded, trivially cheap. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { v_ += n; }
    std::uint64_t value() const { return v_; }
    void reset() { v_ = 0; }

  private:
    std::uint64_t v_ = 0;
};

/** Last-value instrument with a free-form unit label. */
class Gauge
{
  public:
    void set(double v) { v_ = v; }
    double value() const { return v_; }
    void reset() { v_ = 0.0; }

  private:
    double v_ = 0.0;
};

/**
 * A gauge that only accepts one core/units.hh quantity type, so a
 * Watts gauge cannot be fed a Celsius by accident.
 */
template <class Q>
class TypedGauge
{
  public:
    TypedGauge() = default;
    explicit TypedGauge(Gauge &gauge) : gauge_(&gauge) {}

    void
    set(Q quantity)
    {
        if (gauge_ != nullptr)
            gauge_->set(quantity.value());
    }

  private:
    Gauge *gauge_ = nullptr;
};

/** One named snapshot row, for export and display. */
struct CounterSample
{
    std::string name;
    std::uint64_t value;
};

struct GaugeSample
{
    std::string name;
    std::string unit;
    double value;
};

/**
 * Name -> instrument registry. Registration is idempotent: asking for
 * an existing name returns the same instrument, so independent
 * components may share a counter deliberately.
 */
class Registry
{
  public:
    /** Get or create the counter named @p name. */
    Counter &counter(const std::string &name);

    /**
     * Get or create the gauge named @p name; @p unit is recorded on
     * first registration (later registrations must not contradict it).
     */
    Gauge &gauge(const std::string &name, const std::string &unit = "");

    /** gauge() wrapped so it can only be set from quantity @p Q. */
    template <class Q>
    TypedGauge<Q>
    typedGauge(const std::string &name, const std::string &unit)
    {
        return TypedGauge<Q>(gauge(name, unit));
    }

    /** Zero every value; registrations (and addresses) survive. */
    void resetValues();

    /**
     * Fold every instrument of @p other into this registry under
     * names prefixed with @p prefix: counters add their values,
     * gauges overwrite (last merge wins, keeping their unit).
     * FleetSim uses this to roll per-shard registries up into one
     * fleet registry as "shard<N>/<name>" without the shards ever
     * sharing instrument storage (each shard stays single-threaded
     * on its own worker).
     */
    void mergePrefixed(const Registry &other, const std::string &prefix);

    /** Counters in name order. */
    std::vector<CounterSample> counters() const;

    /** Gauges in name order. */
    std::vector<GaugeSample> gauges() const;

    std::size_t size() const
    {
        return counters_.size() + gauges_.size();
    }

  private:
    struct GaugeEntry
    {
        Gauge gauge;
        std::string unit;
    };

    // std::map: node-based, so instrument addresses are stable across
    // later registrations — components cache raw pointers/references.
    std::map<std::string, Counter> counters_;
    std::map<std::string, GaugeEntry> gauges_;
};

} // namespace densim::obs

#endif // DENSIM_OBS_REGISTRY_HH
