#include "airflow/fan.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace densim {

Fan::Fan(FanSpec spec, int count) : spec_(std::move(spec)), count_(count)
{
    if (count_ < 1)
        fatal("Fan bank needs at least one unit, got ", count_);
    if (spec_.maxCfm.value() <= 0.0 || spec_.maxPower.value() <= 0.0)
        fatal("Fan spec '", spec_.name, "' has non-positive capacity");
    if (spec_.pressureDerate <= 0.0 || spec_.pressureDerate > 1.0)
        fatal("Fan spec '", spec_.name, "' pressure derate ",
              spec_.pressureDerate, " outside (0, 1]");
    if (spec_.minSpeedFrac < 0.0 || spec_.minSpeedFrac > 1.0)
        fatal("Fan spec '", spec_.name, "' min speed fraction ",
              spec_.minSpeedFrac, " outside [0, 1]");
}

FanSpec
Fan::activeCoolSpec()
{
    // The HP BladeSystem Active Cool story [29] describes ~100 CFM
    // class fans; a 4U Moonshot-class chassis uses a bank of five to
    // deliver the 400 CFM server total of Table III against dense
    // cartridge back-pressure.
    return FanSpec{"ActiveCool", Cfm(100.0), Watts(35.0), 0.15, 0.80};
}

Cfm
Fan::deliveredCfm(double s) const
{
    s = std::clamp(s, 0.0, 1.0);
    return Cfm(spec_.maxCfm.value() * spec_.pressureDerate * s * count_);
}

Watts
Fan::electricalPower(double s) const
{
    s = std::clamp(s, 0.0, 1.0);
    return Watts(spec_.maxPower.value() * s * s * s * count_);
}

double
Fan::speedForCfm(Cfm flow) const
{
    const double cfm = flow.value();
    if (cfm < 0.0)
        fatal("Fan::speedForCfm: negative airflow ", cfm);
    const double cap = maxDeliveredCfm().value();
    if (cfm > cap)
        fatal("Fan bank '", spec_.name, "' cannot deliver ", cfm,
              " CFM (capacity ", cap, ")");
    const double s = cfm / cap;
    return std::max(s, spec_.minSpeedFrac);
}

Watts
Fan::powerForCfm(Cfm flow) const
{
    return electricalPower(speedForCfm(flow));
}

Cfm
Fan::maxDeliveredCfm() const
{
    return Cfm(spec_.maxCfm.value() * spec_.pressureDerate * count_);
}

} // namespace densim
