/**
 * @file
 * Physical socket organization of a density-optimized server.
 *
 * The SUT (Sec. II/III, Figs. 8 and 12) is organized as rows of
 * cartridges: 15 rows, each with 3 cartridges in series along the
 * airflow, each cartridge holding 2 thermally coupled *zones* of 2
 * side-by-side sockets — 12 sockets and 6 zones per row, 180 sockets
 * total. Odd zones (1, 3, 5) carry the 18-fin heat sink, even zones
 * (2, 4, 6) the better 30-fin sink. Zones within a cartridge sit
 * 1.6 in apart; adjacent zones across a cartridge boundary are 3 in
 * apart, which weakens (but does not remove) their coupling.
 *
 * ServerTopology is pure geometry/bookkeeping: it knows where every
 * socket is, which sink it has, and produces the SocketSite list the
 * thermal CouplingMap is built from. It holds no mutable simulation
 * state.
 */

#ifndef DENSIM_SERVER_TOPOLOGY_HH
#define DENSIM_SERVER_TOPOLOGY_HH

#include <cstddef>
#include <vector>

#include "thermal/coupling_map.hh"
#include "thermal/heatsink.hh"

namespace densim {

/** Parameters describing a modular dense-server build. */
struct TopologySpec
{
    int rows = 15;               //!< Parallel row ducts.
    int cartridgesPerRow = 3;    //!< Cartridges in series per row.
    int zonesPerCartridge = 2;   //!< Coupled zones per cartridge.
    int socketsPerZone = 2;      //!< Side-by-side sockets per zone.
    double intraZoneSpacingInch = 1.6; //!< Zone pitch in a cartridge.
    double interCartridgeGapInch = 3.0; //!< Gap between cartridges.
    double perSocketCfm = 6.35;  //!< Airflow share per socket, CFM.
    double inletC = 18.0;        //!< Server inlet air temperature, C.
    /**
     * Assign sinks by row parity (even rows 18-fin, odd rows 30-fin)
     * instead of zone parity — used by the Fig. 3 uncoupled build,
     * where both sockets sit in zone 1 of their own duct but must
     * keep the coupled build's sink mix.
     */
    bool alternateSinksByRow = false;

    // The raw-double fields above are the config_io boundary; typed
    // views for model code:

    /** Per-socket airflow share as a typed quantity. */
    Cfm perSocketFlow() const { return Cfm(perSocketCfm); }

    /** Inlet air temperature as a typed quantity. */
    Celsius inlet() const { return Celsius(inletC); }
};

/** Immutable geometry of one server. */
class ServerTopology
{
  public:
    explicit ServerTopology(TopologySpec spec);

    /** Total socket count. */
    std::size_t numSockets() const;

    /** Zones in series along one duct. */
    int zonesPerRow() const;

    /** Sockets in one row duct. */
    int socketsPerRow() const;

    int numRows() const { return spec_.rows; }

    /** Row (duct) of a socket. */
    int rowOf(std::size_t socket) const;

    /** Zero-based zone index within the row (0 .. zonesPerRow-1). */
    int zoneIndexOf(std::size_t socket) const;

    /** Paper-style one-based zone id (Fig. 12: 1..6 for the SUT). */
    int zoneIdOf(std::size_t socket) const { return zoneIndexOf(socket) + 1; }

    /** Streamwise position (inches from the row inlet). */
    double streamPosOf(std::size_t socket) const;

    /**
     * Heat sink at a socket: odd zones 18-fin, even zones 30-fin,
     * unless overridden via overrideSink().
     */
    const HeatSink &sinkOf(std::size_t socket) const;

    /**
     * Override the sink at one socket (used by the Fig. 3 uncoupled
     * build, where the sink mix must match the coupled build even
     * though both sockets sit in zone 1 of their own duct).
     */
    void overrideSink(std::size_t socket, const HeatSink &sink);

    /** Is the socket in the front (inlet) half of the row? */
    bool inFrontHalf(std::size_t socket) const;

    /** Is the socket in an even (better-sink) zone? */
    bool inEvenZone(std::size_t socket) const;

    /** All sockets of row @p row, in stream order. */
    std::vector<std::size_t> socketsInRow(int row) const;

    /** All sockets of paper zone @p zone_id across all rows. */
    std::vector<std::size_t> socketsInZone(int zone_id) const;

    /** Sites for CouplingMap construction (index == socket id). */
    std::vector<SocketSite> sites() const;

    /**
     * Degree of thermal coupling in this organization: the number of
     * sockets that share one airflow path (zones in series times
     * sockets per zone). Table I reports the analogous figure for
     * commercial systems.
     */
    int degreeOfCoupling() const;

    /** Airflow shared at one zone station of a duct. */
    Cfm zoneCfm() const;

    const TopologySpec &spec() const { return spec_; }

  private:
    void checkSocket(std::size_t socket) const;

    TopologySpec spec_;
    std::vector<const HeatSink *> sinkOverride_;
};

} // namespace densim

#endif // DENSIM_SERVER_TOPOLOGY_HH
