/**
 * @file
 * Byte-level serialization primitives for densim checkpoints.
 *
 * The checkpoint format is deliberately dumb: little-endian scalars,
 * doubles as raw IEEE-754 bit patterns (so ±inf, NaN payloads, and
 * signed zeros round-trip exactly — bit-identical resume depends on
 * this), and length-prefixed strings/vectors. Every read is
 * bounds-checked and throws CkptError with the failing offset, so a
 * truncated or hostile file can never walk the reader out of its
 * buffer (DESIGN.md Sec. 16).
 */

#ifndef DENSIM_CKPT_SERIAL_HH
#define DENSIM_CKPT_SERIAL_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/effects.hh"
#include "util/digest.hh"

namespace densim::ckpt {

/**
 * Any structural defect in a checkpoint file: truncation, bad magic,
 * version skew, digest mismatch, CRC failure, oversized section.
 * Loaders catch this and surface `.what()` as a one-line actionable
 * error; the engine being restored is never partially mutated
 * (validation completes before any state is applied).
 */
class CkptError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Append-only little-endian byte sink. */
class Writer
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

    void u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /**
     * size_t is always written as 8 bytes for format stability.
     * DENSIM_COLD: checkpoint serialization runs at epoch boundaries
     * outside the hot loop; the marker stops the hot-effects
     * analyzer's name-based resolution from binding a hot root's
     * container `.size()` call to this method.
     */
    DENSIM_COLD void size(std::size_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    /** Raw IEEE-754 bits — never a textual round-trip. */
    void f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void bytes(const void *data, std::size_t n)
    {
        buf_.append(static_cast<const char *>(data), n);
    }

    /** Length-prefixed string. */
    void str(std::string_view s)
    {
        size(s.size());
        buf_.append(s.data(), s.size());
    }

    void vecF64(const std::vector<double> &v)
    {
        size(v.size());
        for (const double x : v)
            f64(x);
    }

    void vecU8(const std::vector<std::uint8_t> &v)
    {
        size(v.size());
        for (const std::uint8_t x : v)
            u8(x);
    }

    void vecSize(const std::vector<std::size_t> &v)
    {
        size(v.size());
        for (const std::size_t x : v)
            size(x);
    }

    const std::string &data() const { return buf_; }

    /** Move the buffer out, leaving the writer empty and reusable. */
    std::string take()
    {
        std::string out = std::move(buf_);
        buf_.clear();
        return out;
    }

  private:
    std::string buf_;
};

/**
 * Bounds-checked little-endian reader over a borrowed buffer. All
 * element counts read from the wire are validated against the bytes
 * actually remaining before any allocation, so a hostile length
 * cannot trigger a multi-gigabyte vector reserve.
 */
class Reader
{
  public:
    explicit Reader(std::string_view data) : data_(data) {}

    std::size_t offset() const { return pos_; }
    std::size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return pos_ == data_.size(); }

    std::uint8_t u8()
    {
        need(1, "u8");
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    std::uint32_t u32()
    {
        need(4, "u32");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t u64()
    {
        need(8, "u64");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    /**
     * DENSIM_COLD: checkpoint parsing is never on the hot path; see
     * Writer::size for why the marker is needed at all.
     */
    DENSIM_COLD std::size_t size()
    {
        const std::uint64_t v = u64();
        if (v > static_cast<std::uint64_t>(SIZE_MAX))
            throw CkptError("checkpoint: size value overflows size_t at "
                            "offset " +
                            std::to_string(pos_ - 8));
        return static_cast<std::size_t>(v);
    }

    bool boolean()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw CkptError("checkpoint: bad boolean byte " +
                            std::to_string(int(v)) + " at offset " +
                            std::to_string(pos_ - 1));
        return v == 1;
    }

    double f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string str()
    {
        const std::size_t n = counted(1, "string");
        std::string out(data_.substr(pos_, n));
        pos_ += n;
        return out;
    }

    /** Borrow @p n raw bytes (header magic, section payloads). */
    std::string_view raw(std::size_t n)
    {
        need(n, "raw bytes");
        std::string_view out = data_.substr(pos_, n);
        pos_ += n;
        return out;
    }

    std::vector<double> vecF64()
    {
        const std::size_t n = counted(8, "f64 vector");
        std::vector<double> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(f64());
        return out;
    }

    std::vector<std::uint8_t> vecU8()
    {
        const std::size_t n = counted(1, "u8 vector");
        std::vector<std::uint8_t> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(u8());
        return out;
    }

    std::vector<std::size_t> vecSize()
    {
        const std::size_t n = counted(8, "size vector");
        std::vector<std::size_t> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(size());
        return out;
    }

    /** The whole payload must have been consumed (format drift trap). */
    void expectEnd(const char *what) const
    {
        if (!atEnd())
            throw CkptError(std::string("checkpoint: trailing bytes in ") +
                            what + " section (" +
                            std::to_string(remaining()) + " unread)");
    }

  private:
    void need(std::size_t n, const char *what) const
    {
        if (remaining() < n)
            throw CkptError(std::string("checkpoint: truncated while "
                                        "reading ") +
                            what + " at offset " + std::to_string(pos_) +
                            " (need " + std::to_string(n) + ", have " +
                            std::to_string(remaining()) + ")");
    }

    /** Read an element count and prove the payload actually fits. */
    std::size_t counted(std::size_t elemSize, const char *what)
    {
        const std::size_t n = size();
        if (n > remaining() / elemSize)
            throw CkptError(std::string("checkpoint: oversized ") + what +
                            " length " + std::to_string(n) + " at offset " +
                            std::to_string(pos_ - 8) + " (only " +
                            std::to_string(remaining()) +
                            " bytes remain)");
        return n;
    }

    std::string_view data_;
    std::size_t pos_ = 0;
};

/** Per-section integrity checksum (FNV-1a 64 over the payload). */
inline std::uint64_t
sectionCrc(std::string_view payload)
{
    return fnv1a64(payload);
}

} // namespace densim::ckpt

#endif // DENSIM_CKPT_SERIAL_HH
