/**
 * @file
 * Minimal parallel-for over an index range with exception
 * propagation — the worker pool behind Experiment::runAll.
 *
 * Work items are claimed from an atomic counter, so any number of
 * items runs on a bounded pool. An exception thrown by a work item
 * used to escape its std::thread and take the whole process down via
 * std::terminate; here the first one is captured, remaining items are
 * abandoned (workers drain the counter without running them), and the
 * exception is rethrown on the calling thread once every worker has
 * joined — a failed cell surfaces as an ordinary exception instead of
 * a lost process.
 */

#ifndef DENSIM_UTIL_PARALLEL_HH
#define DENSIM_UTIL_PARALLEL_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

namespace densim {

/**
 * Invoke fn(i) for every i in [0, count) on up to @p threads workers
 * (0 = hardware concurrency). Completion order is unspecified; fn
 * must handle its own synchronization for shared state (writing to
 * distinct per-index slots is safe). The first exception any call
 * throws is rethrown here after all workers join.
 */
template <typename Fn>
void
parallelFor(std::size_t count, unsigned threads, Fn &&fn)
{
    if (count == 0)
        return;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    if (static_cast<std::size_t>(threads) > count)
        threads = static_cast<unsigned>(count);

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error; // Written once by the failed.exchange
                              // winner, read after the joins.
    auto worker = [&]() {
        for (;;) {
            if (failed.load(std::memory_order_acquire))
                return;
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                if (!failed.exchange(true, std::memory_order_acq_rel))
                    error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace densim

#endif // DENSIM_UTIL_PARALLEL_HH
