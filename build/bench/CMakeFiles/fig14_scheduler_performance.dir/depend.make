# Empty dependencies file for fig14_scheduler_performance.
# This may be replaced when dependencies are built.
