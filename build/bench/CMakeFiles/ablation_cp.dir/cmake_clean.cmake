file(REMOVE_RECURSE
  "CMakeFiles/ablation_cp.dir/ablation_cp.cc.o"
  "CMakeFiles/ablation_cp.dir/ablation_cp.cc.o.d"
  "ablation_cp"
  "ablation_cp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
