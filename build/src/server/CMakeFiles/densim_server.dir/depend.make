# Empty dependencies file for densim_server.
# This may be replaced when dependencies are built.
