// Ill-formed: a bare double is not a temperature; construction is
// explicit so call sites must name the scale.
#include "core/units.hh"

densim::Celsius
ambient()
{
    return 45.0;
}

int
main()
{
    return ambient().value() > 0.0 ? 0 : 1;
}
