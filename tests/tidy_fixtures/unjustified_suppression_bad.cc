// Known-bad fixture for densim-unjustified-suppression: suppression
// markers that carry no justification prose, neither in the same
// comment nor on the preceding line (DESIGN.md Sec. 13 policy).
#include <vector>

namespace fixture {

void namedButNaked()
{
    std::vector<bool> flags; // NOLINT(densim-hot-layout)
    (void)flags;
}

void bareAndNaked()
{
    std::vector<bool> more; // NOLINT
    (void)more;
}

} // namespace fixture
